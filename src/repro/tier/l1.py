"""The per-node L1: a small, fast cache in front of the sharded L2.

:class:`L1Tier` owns the L1 cache, the admission policy, and the write-back
bookkeeping of one :class:`~repro.cluster.node.CacheNode`.  The node drives it
from the same read/flush/message paths that drive the L2, so the two tiers
stay in lockstep with the single-tier accounting:

* **Reads** try the L1 first.  A valid L1 hit serves immediately and charges
  only :meth:`~repro.core.cost_model.CostModel.l1_hit_cost`; anything else
  falls through to the existing L2 path, after which the node *offers* the
  key back to the L1 (admission-gated promotion).
* **Freshness messages fan out through both tiers**: every invalidate/update
  the node applies to its L2 is applied to the L1 as well, so an L1 never
  serves staler data than its L2 would.
* **Write-back mode** installs backend fetches into the L1 only and defers
  the L2 install: dirty entries are flushed down in batch at every interval
  flush and demoted on eviction, each charged
  :meth:`~repro.core.cost_model.CostModel.writeback_flush_cost`.
* **Degraded serving** (the ``l2-outage`` scenario) answers reads straight
  from the L1 — stale entries included — while the shared tier is partitioned
  away; reads whose key is not in the L1 fail.

The L1 stores *copies* of L2 entries, never shared objects: the staleness risk
of an extra tier is real only if each tier holds its own view of the data.

Example — a standalone tier (normally a :class:`~repro.cluster.node.CacheNode`
builds one):

    >>> from repro.cluster.results import NodeResult
    >>> from repro.core.cost_model import CostModel
    >>> from repro.tier import L1Tier, TierConfig
    >>> tier = L1Tier(TierConfig(l1_capacity=2, mode="write-back"),
    ...               costs=CostModel(), result=NodeResult())
    >>> tier.write_back
    True
    >>> len(tier.cache)
    0
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Set

from repro.cache.cache import Cache
from repro.cache.entry import CacheEntry
from repro.cache.eviction import LRUEviction
from repro.tier.admission import make_admission
from repro.tier.config import TierConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backend.datastore import DataStore
    from repro.cluster.results import NodeResult
    from repro.core.cost_model import CostModel
    from repro.core.policy import FreshnessPolicy
    from repro.workload.base import Request

#: Callback a node installs to receive demoted (dirty, evicted) L1 entries.
DemoteSink = Callable[[CacheEntry, float], None]


def _copy_entry(entry: CacheEntry) -> CacheEntry:
    """Deep-enough copy of a cache entry (tiers never share entry objects)."""
    return CacheEntry(
        key=entry.key,
        version=entry.version,
        as_of=entry.as_of,
        fetched_at=entry.fetched_at,
        key_size=entry.key_size,
        value_size=entry.value_size,
        state=entry.state,
        last_poll_accounted=entry.last_poll_accounted,
        hits=0,
    )


class L1Tier:
    """One node's L1 cache, admission policy, and write-back state.

    Args:
        config: Tier parameters (capacity, mode, admission); must be enabled
            (``l1_capacity > 0``) — disabled configs are normalised to "no
            tier" before a node is built.
        costs: The fleet's cost model (``l1_hit`` / ``l1_insert`` /
            ``writeback_flush`` charges).
        result: The owning node's result; tier counters accumulate here so
            fleet aggregation and snapshots see one counter set per node.
        seed: Seed for the admission sketch's hash family (per-node).
        demote_sink: Called with ``(entry, time)`` when a *dirty* entry is
            evicted from the L1 — the node installs it into its L2.
        victim_settler: Called with every evicted entry before demotion; the
            node uses it to settle lazily-accounted polling costs on victims
            whose key no longer lives in the L2 (they carried their own poll
            accounting, which must not vanish with them).
    """

    def __init__(
        self,
        config: TierConfig,
        costs: "CostModel",
        result: "NodeResult",
        seed: int = 0,
        demote_sink: Optional[DemoteSink] = None,
        victim_settler: Optional[DemoteSink] = None,
    ) -> None:
        self.config = config
        self.costs = costs
        self.result = result
        self.admission = make_admission(config, seed=seed)
        self.cache = Cache(
            capacity=config.l1_capacity,
            eviction=LRUEviction(),
            on_evict=self._on_evict,
        )
        #: Keys fetched into the L1 that the L2 has not seen yet (write-back).
        self.dirty: Set[str] = set()
        #: Whether the shared tier is partitioned away (``l2-outage``): reads
        #: are served degraded from the L1 and misses cannot fetch.
        self.outage = False
        self._demote_sink = demote_sink
        self._victim_settler = victim_settler

    @property
    def write_back(self) -> bool:
        """Whether fetches fill the L1 only (deferred L2 install)."""
        return self.config.mode == "write-back"

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def settle(
        self,
        key: str,
        now: float,
        policy: "FreshnessPolicy",
        l2_entry: Optional[CacheEntry],
        account_polls: Callable[[CacheEntry, float], None],
    ) -> None:
        """Settle the L1 entry's TTL state before a lookup.

        Expiry timers fire on the L1 copy exactly as they would on the L2
        copy.  In polling mode the L1 piggybacks on the polls its node
        already accounts: when the L2 holds the key, the freshly settled L2
        entry's ``as_of``/``version`` are mirrored onto the L1 copy (one poll
        per node, not per tier); when the key lives only in the L1
        (write-back before the flush), the L1 entry polls — and is charged —
        itself via ``account_polls``.
        """
        entry = self.cache.peek(key)
        if entry is None:
            return
        mode = policy.ttl_mode
        if mode == "expiry":
            if entry.is_valid and policy.is_expired(entry.fetched_at, now):
                self.cache.expire(key)
        elif mode == "polling":
            if l2_entry is not None:
                entry.as_of = max(entry.as_of, l2_entry.as_of)
                entry.version = max(entry.version, l2_entry.version)
                entry.last_poll_accounted = max(
                    entry.last_poll_accounted, l2_entry.last_poll_accounted
                )
            else:
                account_polls(entry, now)

    def serve(self, request: "Request", datastore: "DataStore", staleness_bound: float) -> bool:
        """Serve one read from the L1 if it holds a valid entry.

        Returns ``True`` when the read was served (a fleet-level hit, charged
        ``l1_hit``); ``False`` lets the node fall through to its L2 path.
        """
        entry, outcome = self.cache.lookup(request.key, request.time)
        if outcome != "hit":
            return False
        result = self.result
        result.hits += 1
        result.l1_hits += 1
        result.tier_cost += self.costs.l1_hit_cost(request.key_size)
        if not datastore.is_fresh(request.key, entry.as_of, request.time, staleness_bound):
            result.staleness_violations += 1
        return True

    def serve_degraded(
        self, request: "Request", datastore: "DataStore", staleness_bound: float
    ) -> bool:
        """Serve one read during an L2 outage — availability over freshness.

        Any L1 entry answers, valid or not (the alternative is failing the
        read outright), with staleness violations accounted honestly.
        Returns ``False`` when the key is not in the L1 at all: the read
        fails (counted by the caller), because the shared tier that would
        normally absorb the miss is partitioned away.
        """
        entry, outcome = self.cache.lookup(request.key, request.time)
        if outcome == "cold_miss":
            return False
        result = self.result
        result.hits += 1
        result.l1_hits += 1
        result.l1_served_degraded += 1
        result.tier_cost += self.costs.l1_hit_cost(request.key_size)
        if not datastore.is_fresh(request.key, entry.as_of, request.time, staleness_bound):
            result.staleness_violations += 1
        return True

    # ------------------------------------------------------------------ #
    # Promotion / fill
    # ------------------------------------------------------------------ #
    def offer(
        self,
        source: CacheEntry,
        now: float,
        ttl_headroom: Optional[float],
        promotion: bool,
    ) -> None:
        """Offer an L2-served entry to the L1 (admission-gated promotion).

        Called after an L2 hit (``promotion=True``) or a miss fill
        (``promotion=False``, write-through mode).  An entry already in the
        L1 is refreshed in place when the L2 copy is strictly newer — the
        re-promotion path after a fan-out invalidate.
        """
        self.admission.observe(source.key)
        existing = self.cache.peek(source.key)
        if existing is not None:
            if source.is_valid and (
                not existing.is_valid
                or existing.version < source.version
                or existing.as_of < source.as_of
            ):
                existing.version = source.version
                existing.as_of = source.as_of
                existing.fetched_at = source.fetched_at
                existing.value_size = source.value_size
                existing.last_poll_accounted = source.last_poll_accounted
                existing.state = source.state
                self.result.l1_insertions += 1
                self.result.tier_cost += self.costs.l1_insert_cost(
                    source.key_size, source.value_size
                )
            return
        if not self.admission.admit(source.key, source.value_size, ttl_headroom):
            self.result.l1_admission_rejects += 1
            return
        self.cache.restore_entry(_copy_entry(source), now)
        self.result.l1_insertions += 1
        if promotion:
            self.result.l1_promotions += 1
        self.result.tier_cost += self.costs.l1_insert_cost(source.key_size, source.value_size)

    def fill_write_back(
        self,
        request: "Request",
        version: int,
        value_size: int,
        ttl_headroom: Optional[float],
    ) -> bool:
        """Install a backend fetch into the L1 only (write-back mode).

        Returns ``True`` when the entry entered the L1 (marked dirty for the
        next write-back flush).  When admission refuses, the caller falls
        back to the write-through install so the fetch is not wasted.
        """
        key = request.key
        self.admission.observe(key)
        if not self.admission.admit(key, value_size, ttl_headroom):
            self.result.l1_admission_rejects += 1
            return False
        entry = CacheEntry(
            key=key,
            version=version,
            as_of=request.time,
            fetched_at=request.time,
            key_size=request.key_size,
            value_size=value_size,
            last_poll_accounted=request.time,
        )
        self.cache.restore_entry(entry, request.time)
        self.dirty.add(key)
        self.result.l1_insertions += 1
        self.result.tier_cost += self.costs.l1_insert_cost(request.key_size, value_size)
        return True

    # ------------------------------------------------------------------ #
    # Write-back flush, demotion, and message fan-out
    # ------------------------------------------------------------------ #
    def flush(self, flush_time: float) -> None:
        """Flush dirty entries down to the L2 and advance the decay clock.

        Entries stay in the L1 (a flush cleans, it does not evict); each one
        charged as one ``writeback_flush``.  Keys are flushed in sorted order
        so runs replay identically regardless of set-iteration order.  While
        the shared tier is partitioned away (``outage``), write-backs cannot
        cross the partition: dirty entries stay dirty (and uncharged) until
        the outage ends; only the admission decay clock advances.
        """
        if self.outage:
            self.admission.end_interval()
            return
        if self.dirty and self._demote_sink is not None:
            for key in sorted(self.dirty):
                entry = self.cache.peek(key)
                if entry is None:  # pragma: no cover - defensive
                    continue
                self.result.l1_writebacks += 1
                self.result.tier_cost += self.costs.writeback_flush_cost(
                    entry.key_size, entry.value_size
                )
                self._demote_sink(_copy_entry(entry), flush_time)
            self.dirty.clear()
        self.admission.end_interval()

    def _on_evict(self, entry: CacheEntry, time: float) -> None:
        """Capacity eviction: demote dirty entries to the L2, drop the rest.

        During an L2 outage a dirty victim cannot cross the partition: it is
        dropped (data loss is exactly what write-back risks), uncharged.
        """
        self.result.l1_evictions += 1
        if self._victim_settler is not None:
            self._victim_settler(entry, time)
        if entry.key in self.dirty:
            self.dirty.discard(entry.key)
            if self.outage:
                return
            self.result.l1_demotions += 1
            self.result.l1_writebacks += 1
            self.result.tier_cost += self.costs.writeback_flush_cost(
                entry.key_size, entry.value_size
            )
            if self._demote_sink is not None:
                self._demote_sink(_copy_entry(entry), time)

    def apply_invalidate(self, key: str, time: float) -> None:
        """Fan an invalidation into the L1 (keeps L1 never-staler-than-L2)."""
        self.cache.apply_invalidate(key, time)

    def apply_update(self, key: str, version: int, time: float, value_size: int) -> bool:
        """Fan an update into the L1 (refreshes only if the key is present).

        Returns ``True`` when an L1 copy was refreshed — an update that
        missed the L2 but landed here was not wasted.
        """
        return self.cache.apply_update(key, version=version, time=time, value_size=value_size)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every L1 entry and all dirty state (cold restart / crash).

        Dirty entries are *lost*, not flushed: they only ever existed in the
        L1's volatile memory, which is exactly what write-back risks.
        """
        self.cache.clear()
        self.dirty.clear()
