"""repro.tier — the two-level (L1/L2) cache hierarchy.

Every real fleet fronts its shared cache tier with a small in-process L1;
this package gives each :class:`~repro.cluster.node.CacheNode` one, so the
staleness/cost trade-offs of tiering — the paper's core tension, now with two
places data can go stale — become measurable:

* :class:`TierConfig` — declarative tier parameters (capacity, fill mode,
  admission policy); ``l1_capacity=0`` disables the tier and reproduces the
  single-tier results byte-for-byte (test-pinned),
* :class:`L1Tier` — the per-node L1 cache with write-through / write-back
  fill, admission-gated promotion, demotion on eviction, invalidation
  fan-out, and degraded serving during an L2 outage, and
* the admission policies (:func:`make_admission`): ``always``,
  ``second-hit`` (Count-min sketch), and ``size-ttl``.

Pass ``tier=TierConfig(l1_capacity=...)`` to
:class:`~repro.cluster.cluster.ClusterSimulation`, sweep the
``l1_capacities`` / ``tier_modes`` axes of an
:class:`~repro.experiments.spec.ExperimentSpec`, or run
``python -m repro tier`` from the command line.
"""

from repro.tier.admission import (
    AdmissionPolicy,
    SecondHitAdmission,
    SizeTTLAdmission,
    make_admission,
)
from repro.tier.config import ADMISSION_POLICIES, TIER_MODES, TierConfig
from repro.tier.l1 import L1Tier

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "L1Tier",
    "SecondHitAdmission",
    "SizeTTLAdmission",
    "TIER_MODES",
    "TierConfig",
    "make_admission",
]
