"""Configuration of the two-level (L1/L2) cache hierarchy.

A :class:`TierConfig` turns a :class:`~repro.cluster.node.CacheNode` into a
tiered node: a small, fast, per-node L1 sits in front of the node's existing
cache, which becomes the L2 (the sharded, replicated fleet tier).  The config
is declarative and picklable — names and numbers only — so it can ride inside
:class:`~repro.experiments.spec.RunCell` grids and be recorded verbatim next
to result rows.

``l1_capacity=0`` disables the hierarchy entirely: the cluster normalises a
zero-capacity config to "no tier" and reproduces the single-tier results
byte-for-byte (test-pinned), so the tier axes are safe to add to any existing
experiment grid.

Example:

    >>> from repro.tier import TierConfig
    >>> tier = TierConfig(l1_capacity=64, mode="write-back", admission="second-hit")
    >>> tier.enabled
    True
    >>> TierConfig(l1_capacity=0).enabled
    False
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError

#: Fill modes of the hierarchy (how a fetched object reaches the tiers).
TIER_MODES = ("write-through", "write-back")

#: Registered admission-policy names (see :mod:`repro.tier.admission`).
ADMISSION_POLICIES = ("always", "second-hit", "size-ttl")


@dataclass(frozen=True, slots=True)
class TierConfig:
    """Parameters of the per-node L1 in front of the sharded L2.

    Args:
        l1_capacity: L1 size in objects.  ``0`` disables the tier (the node
            behaves exactly like a single-tier node — pinned equivalence).
        mode: ``"write-through"`` installs every backend fetch into the L2
            and promotes admitted keys into the L1 as a copy; the L2 always
            holds everything the L1 holds.  ``"write-back"`` installs fetches
            into the L1 *only* and defers the L2 install: dirty entries are
            flushed down in batch at every interval flush (and demoted on L1
            eviction), each charged
            :meth:`~repro.core.cost_model.CostModel.writeback_flush_cost`.
        admission: Name of the L1 admission policy — ``"always"``,
            ``"second-hit"`` (Count-min sketch, admit on the second access
            within the decay window), or ``"size-ttl"`` (second-hit plus
            size/TTL gating).
        max_value_size: Largest value (bytes) ``"size-ttl"`` admits into the
            L1 (``None`` = no size gate).
        min_ttl_headroom: ``"size-ttl"`` only admits an entry whose TTL-expiry
            timer (when the node's policy has one) still has at least this
            many seconds left — caching an about-to-expire object in the fast
            tier is wasted work.
        sketch_width: Width of the ``"second-hit"`` Count-min sketch.
        sketch_depth: Depth of the ``"second-hit"`` Count-min sketch.
        decay_every: Halve the admission sketch every this many interval
            flushes so "recently seen" forgets old traffic.
    """

    l1_capacity: int = 0
    mode: str = "write-through"
    admission: str = "second-hit"
    max_value_size: Optional[int] = None
    min_ttl_headroom: float = 0.0
    sketch_width: int = 512
    sketch_depth: int = 4
    decay_every: int = 8

    def __post_init__(self) -> None:
        if self.l1_capacity < 0:
            raise ConfigurationError(
                f"l1_capacity must be >= 0, got {self.l1_capacity}"
            )
        if self.mode not in TIER_MODES:
            raise ConfigurationError(
                f"tier mode must be one of {TIER_MODES}, got {self.mode!r}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission must be one of {ADMISSION_POLICIES}, got {self.admission!r}"
            )
        if self.max_value_size is not None and self.max_value_size < 1:
            raise ConfigurationError(
                f"max_value_size must be >= 1 or None, got {self.max_value_size}"
            )
        if self.min_ttl_headroom < 0:
            raise ConfigurationError(
                f"min_ttl_headroom must be >= 0, got {self.min_ttl_headroom}"
            )
        if self.sketch_width < 1 or self.sketch_depth < 1:
            raise ConfigurationError(
                "sketch_width and sketch_depth must be >= 1, got "
                f"width={self.sketch_width}, depth={self.sketch_depth}"
            )
        if self.decay_every < 1:
            raise ConfigurationError(
                f"decay_every must be >= 1, got {self.decay_every}"
            )

    @property
    def enabled(self) -> bool:
        """Whether the config actually creates an L1 (``l1_capacity > 0``)."""
        return self.l1_capacity > 0

    def as_dict(self) -> Dict[str, Any]:
        """Flatten to primitives for result rows and run configs."""
        return asdict(self)
