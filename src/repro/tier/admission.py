"""Pluggable L1 admission policies.

Admission decides which objects earn a slot in the small per-node L1.  The
fast tier is orders of magnitude smaller than the sharded L2, so admitting
everything lets one-hit wonders evict the keys that actually produce L1 hits;
the classic countermeasure (TinyLFU-style) is to require evidence of reuse
before admitting.  Three policies ship:

* ``always`` — admit every candidate (the degenerate baseline; useful for
  isolating the effect of admission itself),
* ``second-hit`` — admit a key on its **second** access within the decay
  window, tracked approximately by the existing Count-min sketch
  (:class:`~repro.sketch.countmin.CountMinSketch`), and
* ``size-ttl`` — ``second-hit`` plus size/TTL gating: oversized values and
  entries whose TTL timer is about to fire are refused regardless of
  frequency.

Admission state is deterministic (the sketch hash family is seeded per node)
and serialisable (:meth:`AdmissionPolicy.state` /
:meth:`AdmissionPolicy.load_state`), so snapshot/crash-resume replays
admission decisions exactly.

Example — the second access admits, the first does not:

    >>> from repro.tier import TierConfig, make_admission
    >>> policy = make_admission(TierConfig(l1_capacity=4, admission="second-hit"))
    >>> policy.observe("k")
    >>> policy.admit("k", value_size=128, ttl_headroom=None)
    False
    >>> policy.observe("k")
    >>> policy.admit("k", value_size=128, ttl_headroom=None)
    True
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.sketch.countmin import CountMinSketch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tier.config import TierConfig


class AdmissionPolicy:
    """Base admission policy: admit everything, keep no state."""

    name = "always"

    def observe(self, key: str) -> None:
        """Record one access to ``key`` (called for every L1-missed read)."""

    def admit(self, key: str, value_size: int, ttl_headroom: Optional[float]) -> bool:
        """Whether ``key`` may enter the L1 right now.

        Args:
            key: Candidate key.
            value_size: Value size in bytes of the candidate entry.
            ttl_headroom: Seconds until the entry's TTL-expiry timer fires
                (``None`` when the node's policy has no expiry timer).
        """
        return True

    def end_interval(self) -> None:
        """Advance the decay clock (called at every interval flush)."""

    def state(self) -> Dict[str, Any]:
        """Serialisable snapshot of the admission state (crash-resume)."""
        return {}

    def load_state(self, data: Dict[str, Any]) -> None:
        """Restore :meth:`state` output (crash-resume)."""


class SecondHitAdmission(AdmissionPolicy):
    """Admit a key on its second access within the decay window.

    Accesses are counted approximately in a Count-min sketch that is halved
    every ``decay_every`` interval flushes, so "second access" means *recent*
    reuse, not all-time reuse.  Collisions can only over-admit (the sketch
    over-counts), never starve a genuinely reused key.
    """

    name = "second-hit"

    def __init__(self, config: "TierConfig", seed: int = 0) -> None:
        self._sketch = CountMinSketch(
            width=config.sketch_width, depth=config.sketch_depth, seed=seed
        )
        self._decay_every = config.decay_every
        self._intervals = 0

    def observe(self, key: str) -> None:
        self._sketch.add(key)

    def admit(self, key: str, value_size: int, ttl_headroom: Optional[float]) -> bool:
        return self._sketch.query(key) >= 2

    def end_interval(self) -> None:
        self._intervals += 1
        if self._intervals >= self._decay_every:
            self._sketch.halve()
            self._intervals = 0

    def state(self) -> Dict[str, Any]:
        return {"sketch": self._sketch.state(), "intervals": self._intervals}

    def load_state(self, data: Dict[str, Any]) -> None:
        self._sketch.load_state(data["sketch"])
        self._intervals = int(data["intervals"])


class SizeTTLAdmission(SecondHitAdmission):
    """Second-hit admission with size and TTL-headroom gates.

    An object must (a) show recent reuse, (b) fit under ``max_value_size``,
    and (c) — when the node's policy runs a TTL-expiry timer — have at least
    ``min_ttl_headroom`` seconds of validity left.  Gate (c) keeps
    about-to-expire objects out of the fast tier, where they would turn into
    L1 stale misses almost immediately.
    """

    name = "size-ttl"

    def __init__(self, config: "TierConfig", seed: int = 0) -> None:
        super().__init__(config, seed=seed)
        self._max_value_size = config.max_value_size
        self._min_ttl_headroom = config.min_ttl_headroom

    def admit(self, key: str, value_size: int, ttl_headroom: Optional[float]) -> bool:
        if self._max_value_size is not None and value_size > self._max_value_size:
            return False
        if ttl_headroom is not None and ttl_headroom < self._min_ttl_headroom:
            return False
        return super().admit(key, value_size, ttl_headroom)


_ADMISSION_FACTORIES = {
    "always": lambda config, seed: AdmissionPolicy(),
    "second-hit": lambda config, seed: SecondHitAdmission(config, seed=seed),
    "size-ttl": lambda config, seed: SizeTTLAdmission(config, seed=seed),
}


def make_admission(config: "TierConfig", seed: int = 0) -> AdmissionPolicy:
    """Build the admission policy a :class:`~repro.tier.TierConfig` names.

    Raises:
        ConfigurationError: If the name is not registered (the config
            validates its own fields, so this only fires for configs built
            by bypassing :class:`~repro.tier.TierConfig`).
    """
    try:
        factory = _ADMISSION_FACTORIES[config.admission]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown admission policy {config.admission!r}; expected one of "
            f"{sorted(_ADMISSION_FACTORIES)}"
        ) from exc
    return factory(config, seed)
