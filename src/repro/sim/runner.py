"""Helpers for running families of simulations.

Experiments almost always run the *same* request stream under several policies
(Figure 5) or the same policy across a sweep of staleness bounds (Figures 2
and 3).  These helpers build fresh component instances per run so results are
independent, and return plain result objects that the experiment modules turn
into tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.backend.channel import Channel
from repro.core.cost_model import CostModel
from repro.core.policy import FreshnessPolicy
from repro.sim.results import SimulationResult
from repro.sim.simulation import Simulation
from repro.workload.base import Request

PolicyFactory = Callable[[], FreshnessPolicy]


def _reusable(requests: Iterable[Request]) -> Sequence[Request]:
    """Materialize a one-shot stream so it can be replayed across runs.

    These helpers deliberately replay the *same* trace under several
    configurations, so a lazy generator has to be drawn once up front.  For a
    single-configuration streaming run, build :class:`Simulation` directly.
    """
    if isinstance(requests, Sequence):
        return requests
    return list(requests)


@dataclass(slots=True)
class PolicyRun:
    """One simulation run: the policy label plus its result."""

    label: str
    result: SimulationResult


def compare_policies(
    requests: Iterable[Request],
    policy_factories: Dict[str, PolicyFactory],
    staleness_bound: float,
    costs: Optional[CostModel] = None,
    cache_capacity: Optional[int] = None,
    channel_factory: Optional[Callable[[], Channel]] = None,
    workload_name: str = "",
    duration: Optional[float] = None,
) -> List[PolicyRun]:
    """Run the same request stream under several policies.

    Args:
        requests: The request stream (shared verbatim across runs).
        policy_factories: Mapping from display label to a zero-argument
            factory producing a *fresh* policy instance (policies hold per-run
            state, so instances must not be reused).
        staleness_bound: Staleness bound ``T`` in seconds.
        costs: Cost model shared by every run.
        cache_capacity: Cache capacity in objects (``None`` = unbounded).
        channel_factory: Optional factory for a backend-to-cache channel per
            run (``None`` = ideal channel).
        workload_name: Label recorded in every result.
        duration: Simulated horizon; defaults to the last request time.

    Returns:
        One :class:`PolicyRun` per entry of ``policy_factories``, in order.
    """
    requests = _reusable(requests)
    runs: List[PolicyRun] = []
    for label, factory in policy_factories.items():
        simulation = Simulation(
            workload=requests,
            policy=factory(),
            staleness_bound=staleness_bound,
            costs=costs,
            cache_capacity=cache_capacity,
            channel=channel_factory() if channel_factory is not None else None,
            workload_name=workload_name,
            duration=duration,
        )
        runs.append(PolicyRun(label=label, result=simulation.run()))
    return runs


def sweep_staleness_bounds(
    requests: Iterable[Request],
    policy_factory: PolicyFactory,
    bounds: Iterable[float],
    costs: Optional[CostModel] = None,
    cache_capacity: Optional[int] = None,
    workload_name: str = "",
    duration: Optional[float] = None,
) -> List[SimulationResult]:
    """Run one policy across a sweep of staleness bounds.

    Args:
        requests: The request stream (shared verbatim across runs).
        policy_factory: Zero-argument factory producing a fresh policy per run.
        bounds: The staleness bounds ``T`` to sweep, in seconds.
        costs: Cost model shared by every run.
        cache_capacity: Cache capacity in objects (``None`` = unbounded).
        workload_name: Label recorded in every result.
        duration: Simulated horizon; defaults to the last request time.

    Returns:
        One :class:`SimulationResult` per bound, in sweep order.
    """
    requests = _reusable(requests)
    results: List[SimulationResult] = []
    for bound in bounds:
        simulation = Simulation(
            workload=requests,
            policy=policy_factory(),
            staleness_bound=bound,
            costs=costs,
            cache_capacity=cache_capacity,
            workload_name=workload_name,
            duration=duration,
        )
        results.append(simulation.run())
    return results
