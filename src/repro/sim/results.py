"""Simulation results and the cost normalisations of §2.2.

:class:`SimulationResult` accumulates the raw counters during a run and
derives the two headline metrics of the paper:

* :attr:`SimulationResult.normalized_freshness_cost` — :math:`C'_F`, the
  freshness (throughput) overhead divided by the useful work spent serving
  reads ("the ratio of the wasted cycles to the useful cycles"), and
* :attr:`SimulationResult.normalized_staleness_cost` — :math:`C'_S`, the miss
  ratio caused solely by reading stale data (stale-induced misses divided by
  the reads for which the object was present in the cache).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.obs.metrics import bucket_upper_bound


@dataclass(slots=True)
class SimulationResult:
    """Counters and costs accumulated over one simulation run."""

    policy_name: str = ""
    workload_name: str = ""
    staleness_bound: float = 0.0
    duration: float = 0.0

    # Request counters.
    reads: int = 0
    writes: int = 0
    hits: int = 0
    stale_misses: int = 0
    cold_misses: int = 0

    # Costs (dimensionless cost units from the CostModel).
    freshness_cost: float = 0.0
    cold_miss_cost: float = 0.0
    useful_work: float = 0.0

    # Message counters.
    invalidates_sent: int = 0
    updates_sent: int = 0
    updates_wasted: int = 0
    suppressed_invalidates: int = 0
    decisions_nothing: int = 0
    polls: int = 0
    stale_refetches: int = 0
    messages_dropped: int = 0

    # Integrity checks.
    staleness_violations: int = 0

    # Persistence-layer counters (zero unless a store is configured).
    persistence_cost: float = 0.0
    wal_appends: int = 0
    wal_flushes: int = 0
    snapshots_taken: int = 0

    # Concurrency counters (zero unless the in-flight fetch model is
    # enabled; see :mod:`repro.concurrency`).
    backend_fetches: int = 0
    coalesced_reads: int = 0
    stale_serves: int = 0
    early_refreshes: int = 0

    # Read-latency distribution (HDR bucket index -> sample count, using the
    # :mod:`repro.obs.metrics` bucket layout).  Empty unless the concurrency
    # model is enabled; merged bucket-wise when accumulating across shards.
    latency_buckets: Dict[int, int] = field(default_factory=dict)
    latency_count: int = 0
    latency_sum: float = 0.0

    # Cache-level statistics snapshot (filled at the end of the run).
    cache_stats: Dict[str, float] = field(default_factory=dict)

    #: Counter fields summed when accumulating results across shards.
    ACCUMULATED_FIELDS = (
        "reads",
        "writes",
        "hits",
        "stale_misses",
        "cold_misses",
        "freshness_cost",
        "cold_miss_cost",
        "useful_work",
        "invalidates_sent",
        "updates_sent",
        "updates_wasted",
        "suppressed_invalidates",
        "decisions_nothing",
        "polls",
        "stale_refetches",
        "messages_dropped",
        "staleness_violations",
        "persistence_cost",
        "wal_appends",
        "wal_flushes",
        "snapshots_taken",
        "backend_fetches",
        "coalesced_reads",
        "stale_serves",
        "early_refreshes",
        "latency_count",
        "latency_sum",
    )

    def accumulate(self, other: "SimulationResult") -> None:
        """Add another result's counters into this one (fleet aggregation).

        Identity fields (policy, workload, bound, duration) are left
        untouched.  ``cache_stats`` counters are summed key-wise; the derived
        per-cache ratios are recomputed from the summed counters (summing
        ratios across shards would be meaningless).
        """
        for name in self.ACCUMULATED_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if other.latency_buckets:
            buckets = self.latency_buckets
            for index, count in other.latency_buckets.items():
                buckets[index] = buckets.get(index, 0) + count
        stats = self.cache_stats
        for key, value in other.cache_stats.items():
            if key.endswith("_ratio"):
                continue
            stats[key] = stats.get(key, 0) + value
        lookups = stats.get("lookups", 0)
        hits = stats.get("hits", 0)
        stale = stats.get("stale_misses", 0)
        cold = stats.get("cold_misses", 0)
        stats["hit_ratio"] = hits / lookups if lookups else 0.0
        stats["miss_ratio"] = (stale + cold) / lookups if lookups else 0.0
        stats["stale_miss_ratio"] = stale / (hits + stale) if hits + stale else 0.0

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def staleness_cost(self) -> float:
        """:math:`C_S`: the number of misses caused by stale cached data."""
        return float(self.stale_misses)

    @property
    def total_requests(self) -> int:
        """Total number of requests replayed."""
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        """Total misses of any kind."""
        return self.stale_misses + self.cold_misses

    @property
    def miss_ratio(self) -> float:
        """Fraction of reads that missed for any reason."""
        return self.misses / self.reads if self.reads else 0.0

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads served directly from the cache."""
        return self.hits / self.reads if self.reads else 0.0

    @property
    def normalized_freshness_cost(self) -> float:
        """:math:`C'_F`: freshness overhead relative to useful read-serving work."""
        if self.useful_work <= 0.0:
            return 0.0
        return self.freshness_cost / self.useful_work

    @property
    def normalized_staleness_cost(self) -> float:
        """:math:`C'_S`: miss ratio caused solely by reading stale data.

        Normalised by the reads for which the requested object was present in
        the cache (hits plus stale misses), per §2.2.
        """
        present = self.hits + self.stale_misses
        if present == 0:
            return 0.0
        return self.stale_misses / present

    @property
    def stale_miss_ratio_of_all_reads(self) -> float:
        """:math:`C_S / N_R`: stale-induced misses over *all* reads.

        This is the normalisation the closed-form model uses; it coincides
        with :attr:`normalized_staleness_cost` when the cache is large enough
        that cold misses are rare.
        """
        if self.reads == 0:
            return 0.0
        return self.stale_misses / self.reads

    @property
    def freshness_messages(self) -> int:
        """Total number of invalidate/update messages emitted by the backend."""
        return self.invalidates_sent + self.updates_sent

    def read_latency_percentile(self, quantile: float) -> float:
        """Latency quantile from the HDR buckets (0.0 when no samples).

        Mirrors :meth:`repro.obs.metrics.Histogram.percentile`: the value is
        the upper bound of the bucket containing the rank-th sample, so the
        estimate is conservative within one bucket's resolution.
        """
        count = self.latency_count
        if count <= 0:
            return 0.0
        rank = max(1, math.ceil(quantile * count))
        seen = 0
        for index in sorted(self.latency_buckets):
            seen += self.latency_buckets[index]
            if seen >= rank:
                return bucket_upper_bound(index)
        return bucket_upper_bound(max(self.latency_buckets))

    @property
    def read_latency_mean(self) -> float:
        """Mean read latency in simulated seconds (0.0 when no samples)."""
        return self.latency_sum / self.latency_count if self.latency_count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flatten counters and derived metrics for reporting/CSV export."""
        return {
            "policy": self.policy_name,
            "workload": self.workload_name,
            "staleness_bound": self.staleness_bound,
            "duration": self.duration,
            "reads": self.reads,
            "writes": self.writes,
            "hits": self.hits,
            "stale_misses": self.stale_misses,
            "cold_misses": self.cold_misses,
            "freshness_cost": self.freshness_cost,
            "staleness_cost": self.staleness_cost,
            "useful_work": self.useful_work,
            "normalized_freshness_cost": self.normalized_freshness_cost,
            "normalized_staleness_cost": self.normalized_staleness_cost,
            "miss_ratio": self.miss_ratio,
            "hit_ratio": self.hit_ratio,
            "invalidates_sent": self.invalidates_sent,
            "updates_sent": self.updates_sent,
            "updates_wasted": self.updates_wasted,
            "suppressed_invalidates": self.suppressed_invalidates,
            "decisions_nothing": self.decisions_nothing,
            "polls": self.polls,
            "stale_refetches": self.stale_refetches,
            "messages_dropped": self.messages_dropped,
            "staleness_violations": self.staleness_violations,
            "persistence_cost": self.persistence_cost,
            "wal_appends": self.wal_appends,
            "wal_flushes": self.wal_flushes,
            "snapshots_taken": self.snapshots_taken,
            "backend_fetches": self.backend_fetches,
            "coalesced_reads": self.coalesced_reads,
            "stale_serves": self.stale_serves,
            "early_refreshes": self.early_refreshes,
            "read_latency_p50": self.read_latency_percentile(0.50),
            "read_latency_p99": self.read_latency_percentile(0.99),
            "read_latency_p999": self.read_latency_percentile(0.999),
            "read_latency_mean": self.read_latency_mean,
        }
