"""Vectorized (columnar) replay of a compiled trace.

The scalar :class:`~repro.sim.simulation.Simulation` pays Python-interpreter
overhead per request.  For the policies the paper sweeps most, almost nothing
*happens* per request: between two simulation events (interval flushes,
message deliveries) a key's entry changes state at most once, so the hit/miss
classification, the staleness check, and the cost accumulation over a whole
span of requests collapse into a handful of numpy operations per (key, span).

:class:`VectorSimulation` exploits exactly that.  It consumes a
:class:`~repro.workload.compiled.CompiledTrace` and replays the spans between
flush boundaries with per-key kernels, while every simulation *event* — the
interval flush, policy decisions, message sends and deliveries, finalisation —
runs through the unmodified scalar machinery inherited from
:class:`Simulation`, against real :class:`Cache` / :class:`DataStore` /
:class:`WriteBuffer` objects that the kernels keep in sync at span ends.  The
result is byte-for-byte identical to the scalar engine: same counters, same
float accumulation order, same dict insertion orders, same
:class:`DataStore` history (the equivalence suite pins this for every
policy/workload combination).

Why byte-identity is achievable at all:

* **Span writes are safe to pre-apply.**  A span never outlives one staleness
  interval ``T``, so any in-span hit's staleness horizon ``t - T`` lies before
  the span start — freshness checks only ever consult writes from *earlier*
  spans, which are all applied in both engines.
* **Miss versions are positional.**  ``DataStore.read`` at a scalar read sees
  exactly the writes that precede the read in stream order, so the version a
  miss fetches equals the count of that key's writes with smaller stream
  position — computable from the compiled columns regardless of pre-applied
  writes (and robust to timestamp ties).
* **Uniform-cost folds are order-free.**  With a fixed cost preset the per-read
  serve cost and the per-miss cost are constants; accumulating ``n`` of them
  left-to-right gives the same float regardless of which keys they came from.
  Varying-order sums (TTL poll charges) are replayed in global stream order.

When a configuration falls outside the vectorizable envelope (capacity-bounded
caches, per-size cost breakdowns, lossy or delayed channels, persistence,
clairvoyant policies, TTLs above the bound, ...) ``run()`` transparently falls
back to the scalar engine over the decompiled stream — identical by
construction, just slower.
"""

from __future__ import annotations

from itertools import repeat
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.backend.buffer import BufferedWrite
from repro.backend.datastore import DataStore, KeyHistory
from repro.cache.entry import CacheEntry, EntryState
from repro.core.adaptive import AdaptivePolicy, CacheStateAdaptivePolicy
from repro.core.ttl import TTLExpiryPolicy, TTLPollingPolicy
from repro.core.write_reactive import AlwaysInvalidatePolicy, AlwaysUpdatePolicy
from repro.errors import ConfigurationError, WorkloadError
from repro.sim.simulation import Simulation
from repro.sketch.exact import ExactEWTracker
from repro.workload.compiled import CompiledTrace

#: Policy classes with a vectorized kernel.  Exact types only: a subclass may
#: override hooks in ways the kernels would not reproduce.
_VECTOR_POLICIES = (
    AlwaysInvalidatePolicy,
    AlwaysUpdatePolicy,
    AdaptivePolicy,
    CacheStateAdaptivePolicy,
    TTLExpiryPolicy,
    TTLPollingPolicy,
)

_EMPTY_INDEX = np.empty(0, dtype=np.int64)


class _TraceColumns:
    """Per-key write columns precomputed once from a compiled trace.

    For each key: the stream positions, commit times, and value sizes of its
    writes, in stream order.  Every positional/temporal version query the
    kernels make (miss versions, staleness windows, poll refreshes) is a
    ``searchsorted`` against these arrays.
    """

    __slots__ = ("trace", "_pos", "_times", "_vsz", "_bounds")

    def __init__(self, trace: CompiledTrace) -> None:
        self.trace = trace
        write_idx = np.flatnonzero(~trace.is_read)
        write_keys = trace.key_ids[write_idx]
        order = np.argsort(write_keys, kind="stable")
        self._pos = write_idx[order]
        self._times = trace.times[self._pos]
        self._vsz = trace.value_sizes[self._pos]
        unique, starts = np.unique(write_keys[order], return_index=True)
        ends = np.append(starts[1:], write_keys.size)
        self._bounds: Dict[int, Tuple[int, int]] = {
            int(key): (int(start), int(end))
            for key, start, end in zip(unique.tolist(), starts.tolist(), ends.tolist())
        }

    def writes_of(self, key_id: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(times, positions, value_sizes)`` of the key's writes."""
        bounds = self._bounds.get(key_id)
        if bounds is None:
            return _EMPTY_INDEX, _EMPTY_INDEX, _EMPTY_INDEX
        start, end = bounds
        return self._times[start:end], self._pos[start:end], self._vsz[start:end]


class _ReplayContext:
    """Everything the per-key kernels need, resolved once per run."""

    __slots__ = (
        "trace",
        "columns",
        "datastore",
        "bound",
        "ttl",
        "serve_const",
        "miss_const",
        "default_value_size",
    )

    def __init__(
        self,
        columns: _TraceColumns,
        datastore: DataStore,
        bound: float,
        ttl: float,
        serve_const: float,
        miss_const: float,
    ) -> None:
        self.trace = columns.trace
        self.columns = columns
        self.datastore = datastore
        self.bound = bound
        self.ttl = ttl
        self.serve_const = serve_const
        self.miss_const = miss_const
        self.default_value_size = datastore.default_value_size


class _HostState:
    """One cache's mutable replay state (the single cache, or one cluster node).

    The kernels are written against this narrow view so the cluster engine can
    reuse them per node; for :class:`VectorSimulation` there is exactly one.
    """

    __slots__ = (
        "result",
        "cache",
        "entries",
        "buffer",
        "tracker",
        "estimator",
        "reacts",
        "discard_on_miss_fill",
    )

    def __init__(
        self,
        result,
        cache,
        buffer,
        tracker,
        estimator: Optional[ExactEWTracker],
        reacts: bool,
        discard_on_miss_fill: bool,
    ) -> None:
        self.result = result
        self.cache = cache
        self.entries = cache._entries
        self.buffer = buffer
        self.tracker = tracker
        self.estimator = estimator
        self.reacts = reacts
        self.discard_on_miss_fill = discard_on_miss_fill


class _SpanTally:
    """Deferred per-span effects for one host.

    Counter deltas are applied in bulk; order-sensitive effects (new cache
    entries, buffer entries, estimator folds, poll charges) are collected with
    their stream positions and replayed position-sorted, which reproduces the
    scalar engine's dict insertion orders and float accumulation order.
    """

    __slots__ = (
        "reads",
        "hits",
        "stale_misses",
        "cold_misses",
        "violations",
        "expirations",
        "writes",
        "buffered_writes",
        "new_fills",
        "buffer_entries",
        "estimator_ops",
        "poll_events",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.hits = 0
        self.stale_misses = 0
        self.cold_misses = 0
        self.violations = 0
        self.expirations = 0
        self.writes = 0
        self.buffered_writes = 0
        self.new_fills: List[Tuple[int, CacheEntry]] = []
        self.buffer_entries: List[Tuple[int, BufferedWrite]] = []
        self.estimator_ops: List[Tuple[int, str, np.ndarray, np.ndarray]] = []
        self.poll_events: List[Tuple[int, int]] = []


def _group_by_key(
    trace: CompiledTrace, positions: np.ndarray
) -> Iterator[Tuple[int, np.ndarray]]:
    """Group stream ``positions`` by key, yielding ascending position arrays.

    Positions within each group stay ascending (the key sort is stable).
    """
    if positions.size == 0:
        return
    keys = trace.key_ids[positions]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    bounds = np.append(boundaries, sorted_keys.size)
    sorted_positions = positions[order]
    for index in range(starts.size):
        lo = int(starts[index])
        yield int(sorted_keys[lo]), sorted_positions[lo : int(bounds[index])]


def _apply_span_writes(ctx: _ReplayContext, write_positions: np.ndarray) -> None:
    """Commit a span's writes to the datastore, byte-identical to the scalar loop.

    Histories are created in first-write order (the scalar engine's dict
    insertion order); per-key write times extend in stream order and the
    history's value size ends at the key's last span write.
    """
    if write_positions.size == 0:
        return
    trace = ctx.trace
    keys = trace.key_ids[write_positions]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    bounds = np.append(boundaries, sorted_keys.size)
    sorted_positions = write_positions[order]
    times = trace.times[sorted_positions]
    value_sizes = trace.value_sizes[sorted_positions]
    histories = ctx.datastore._histories
    names = trace.key_names
    # New histories must be created in first-write order, not key-id order.
    creation_order = np.argsort(sorted_positions[starts], kind="stable")
    for index in creation_order.tolist():
        name = names[int(sorted_keys[int(starts[index])])]
        if name not in histories:
            histories[name] = KeyHistory(key=name, value_size=ctx.default_value_size)
    for index in range(starts.size):
        lo, hi = int(starts[index]), int(bounds[index])
        history = histories[names[int(sorted_keys[lo])]]
        history.write_times.extend(times[lo:hi].tolist())
        history.value_size = int(value_sizes[hi - 1])
    ctx.datastore.total_writes += int(write_positions.size)


def _miss_version(
    ctx: _ReplayContext, key_id: int, position: int
) -> Tuple[int, int]:
    """Version and value size a backend read at stream ``position`` returns.

    Exactly the writes preceding the read in stream order are visible, so the
    version is the count of the key's writes with smaller position and the
    value size is the latest such write's (or the backend default).
    """
    _, write_pos, write_vsz = ctx.columns.writes_of(key_id)
    version = int(write_pos.searchsorted(position, side="left"))
    if version:
        return version, int(write_vsz[version - 1])
    return 0, ctx.default_value_size


def _fold_estimator(
    estimator: ExactEWTracker, name: str, reads: np.ndarray, writes: np.ndarray
) -> None:
    """Fold one key's span of interleaved observations into the E[W] counters.

    Closed form of replaying ``observe_read`` / ``observe_write`` in stream
    order: each read closes the run of writes since the previous read, the
    first run absorbing the carried ``writes_since_read``.
    """
    counters = estimator._counters_for(name)
    if reads.size == 0:
        counters.writes_since_read += int(writes.size)
        return
    if writes.size:
        before = np.searchsorted(writes, reads, side="left")
        total_closed = int(before[-1])
    else:
        before = None
        total_closed = 0
    carry = counters.writes_since_read
    if estimator.count_zero_runs:
        counters.sample_sum += total_closed + carry
        counters.sample_count += int(reads.size)
    else:
        if before is None:
            runs_closed = 0
            first_run = carry
        else:
            per_read = np.diff(before, prepend=0)
            runs_closed = int(np.count_nonzero(per_read[1:]))
            first_run = int(per_read[0]) + carry
        counters.sample_sum += total_closed + carry
        counters.sample_count += runs_closed + (1 if first_run > 0 else 0)
    counters.writes_since_read = int(writes.size) - total_closed


def _kernel_reactive(
    ctx: _ReplayContext,
    host: _HostState,
    tally: _SpanTally,
    key_id: int,
    name: str,
    reads: np.ndarray,
    writes: np.ndarray,
) -> None:
    """One key's span under a write-reactive policy (invalidate/update/adaptive).

    Within a span no messages arrive and nothing expires, so the key's entry
    changes state at most once: the first read of an absent/invalid entry
    misses and re-fetches, after which every read is a hit.  A key valid at
    span start serves only hits, with the staleness-violation candidates
    checked in bulk.
    """
    trace = ctx.trace
    miss_position = -1
    if reads.size:
        tally.reads += int(reads.size)
        entry = host.entries.get(name)
        if entry is not None and entry.state is EntryState.VALID:
            hits = int(reads.size)
            tally.hits += hits
            entry.hits += hits
            as_of = entry.as_of
            read_times = trace.times[reads]
            horizons = read_times - ctx.bound
            candidates = horizons > as_of
            if candidates.any():
                key_write_times, _, _ = ctx.columns.writes_of(key_id)
                stale_writes = key_write_times.searchsorted(
                    horizons[candidates], side="right"
                ) - key_write_times.searchsorted(as_of, side="right")
                tally.violations += int(np.count_nonzero(stale_writes))
        else:
            miss_position = int(reads[0])
            miss_time = float(trace.times[miss_position])
            version, value_size = _miss_version(ctx, key_id, miss_position)
            if entry is None:
                tally.cold_misses += 1
                entry = CacheEntry(
                    key=name,
                    version=version,
                    as_of=miss_time,
                    fetched_at=miss_time,
                    key_size=int(trace.key_sizes[miss_position]),
                    value_size=value_size,
                    last_poll_accounted=miss_time,
                )
                tally.new_fills.append((miss_position, entry))
            else:
                tally.stale_misses += 1
                entry.refresh(version=version, time=miss_time, value_size=value_size)
                entry.last_poll_accounted = miss_time
            hits = int(reads.size) - 1
            tally.hits += hits
            entry.hits += hits
            host.tracker.mark_refetched(name)
    if writes.size and host.reacts:
        tally.buffered_writes += int(writes.size)
        if miss_position >= 0 and host.discard_on_miss_fill:
            surviving = writes[writes > miss_position]
        else:
            surviving = writes
        if surviving.size:
            first = int(surviving[0])
            last = int(surviving[-1])
            tally.buffer_entries.append(
                (
                    first,
                    BufferedWrite(
                        key=name,
                        first_write_time=float(trace.times[first]),
                        last_write_time=float(trace.times[last]),
                        write_count=int(surviving.size),
                        key_size=int(trace.key_sizes[first]),
                        value_size=int(trace.value_sizes[last]),
                    ),
                )
            )
    if host.estimator is not None and (reads.size or writes.size):
        first_obs = int(reads[0]) if reads.size else int(writes[0])
        if writes.size and (not reads.size or int(writes[0]) < first_obs):
            first_obs = int(writes[0])
        tally.estimator_ops.append((first_obs, name, reads, writes))


def _kernel_ttl_expiry(
    ctx: _ReplayContext,
    host: _HostState,
    tally: _SpanTally,
    key_id: int,
    name: str,
    reads: np.ndarray,
) -> None:
    """One key's whole trace under TTL-expiry (the policy never reacts).

    The entry's life is a sequence of epochs: a fill anchors a timer, the
    first read at or past ``fetched_at + ttl`` expires and re-fetches.  With
    ``ttl <= bound`` no hit can violate the staleness bound, so the walk only
    needs the epoch boundaries — ``O(epochs)`` searchsorted jumps.
    """
    trace = ctx.trace
    read_times = trace.times[reads]
    first_position = int(reads[0])
    fetch_time = float(read_times[0])
    last_fill_position = first_position
    ttl = ctx.ttl
    refetches = 0
    cursor = 0
    total = int(reads.size)
    while True:
        cursor = int(read_times.searchsorted(fetch_time + ttl, side="left"))
        if cursor >= total:
            break
        refetches += 1
        fetch_time = float(read_times[cursor])
        last_fill_position = int(reads[cursor])
    version, value_size = _miss_version(ctx, key_id, last_fill_position)
    entry = CacheEntry(
        key=name,
        version=version,
        as_of=fetch_time,
        fetched_at=fetch_time,
        key_size=int(trace.key_sizes[first_position]),
        value_size=value_size,
        last_poll_accounted=fetch_time,
    )
    hits = total - 1 - refetches
    entry.hits = hits
    tally.new_fills.append((first_position, entry))
    tally.reads += total
    tally.cold_misses += 1
    tally.stale_misses += refetches
    tally.expirations += refetches
    tally.hits += hits


def _kernel_ttl_polling(
    ctx: _ReplayContext,
    host: _HostState,
    tally: _SpanTally,
    key_id: int,
    name: str,
    reads: np.ndarray,
) -> None:
    """One key's whole trace under TTL-polling (the policy never reacts).

    The cold fill anchors the poll timer; every later read settles the polls
    since the last accounting point with the scalar engine's exact integer
    arithmetic.  The walk below jumps straight between reads that charge a
    positive number of polls, recomputing the accounting baseline with the
    same float expressions as :func:`repro.core.ttl.account_entry_polls` (the
    baseline is *not* always the previous poll count — float rounding of
    ``anchor + k * ttl`` can land it one lower, and the walk reproduces that).
    """
    trace = ctx.trace
    first_position = int(reads[0])
    anchor = float(trace.times[first_position])
    version, value_size = _miss_version(ctx, key_id, first_position)
    entry = CacheEntry(
        key=name,
        version=version,
        as_of=anchor,
        fetched_at=anchor,
        key_size=int(trace.key_sizes[first_position]),
        value_size=value_size,
        last_poll_accounted=anchor,
    )
    hits = int(reads.size) - 1
    entry.hits = hits
    tally.new_fills.append((first_position, entry))
    tally.reads += int(reads.size)
    tally.cold_misses += 1
    tally.hits += hits
    if reads.size < 2:
        return
    ttl = ctx.ttl
    read_times = trace.times[reads]
    poll_counts = ((read_times - anchor) / ttl).astype(np.int64)
    baseline = 0
    cursor = 1  # the fill read itself never settles (no entry existed yet)
    total = int(reads.size)
    last_position = -1
    last_poll = anchor
    events = tally.poll_events
    while True:
        jump = int(poll_counts.searchsorted(baseline, side="right"))
        cursor = jump if jump > cursor else cursor
        if cursor >= total:
            break
        k_now = int(poll_counts[cursor])
        polls = k_now - baseline
        if polls > 0:
            last_poll = anchor + k_now * ttl
            last_position = int(reads[cursor])
            events.append((last_position, polls))
            baseline = int((last_poll - anchor) / ttl) if last_poll > anchor else 0
        cursor += 1
    if last_position >= 0:
        # Only the key's *final* settled state is observable between spans —
        # polls refresh the entry monotonically, so collapse the per-event
        # entry updates of the scalar engine into the last one.
        entry.last_poll_accounted = last_poll
        if last_poll > entry.as_of:
            entry.as_of = last_poll
        key_write_times, key_write_pos, _ = ctx.columns.writes_of(key_id)
        # version_at(last_poll) over the writes applied before the settling
        # read: both constraints are prefixes of the same sorted column, so
        # the visible version is the shorter prefix.
        refreshed = min(
            int(key_write_times.searchsorted(last_poll, side="right")),
            int(key_write_pos.searchsorted(last_position, side="left")),
        )
        if refreshed > entry.version:
            entry.version = refreshed


def _flush_tally(ctx: _ReplayContext, host: _HostState, tally: _SpanTally) -> None:
    """Apply a span's deferred effects to the host, in scalar-identical order."""
    result = host.result
    stats = host.cache.stats
    result.reads += tally.reads
    result.writes += tally.writes
    result.hits += tally.hits
    result.stale_misses += tally.stale_misses
    result.stale_refetches += tally.stale_misses
    result.cold_misses += tally.cold_misses
    result.staleness_violations += tally.violations
    stats.lookups += tally.reads
    stats.hits += tally.hits
    stats.stale_misses += tally.stale_misses
    stats.cold_misses += tally.cold_misses
    stats.expirations += tally.expirations
    misses = tally.stale_misses + tally.cold_misses
    ctx.datastore.total_reads += misses
    # Constant-cost accumulations: a left fold of n equal addends is
    # float-identical to the scalar engine's n in-order additions.
    if tally.reads:
        result.useful_work = sum(repeat(ctx.serve_const, tally.reads), result.useful_work)
    if tally.stale_misses:
        result.freshness_cost = sum(
            repeat(ctx.miss_const, tally.stale_misses), result.freshness_cost
        )
    if tally.cold_misses:
        result.cold_miss_cost = sum(
            repeat(ctx.miss_const, tally.cold_misses), result.cold_miss_cost
        )
    if tally.new_fills:
        # Insert new entries in stream order of their cold fill: the scalar
        # engine's cache dict insertion order, which TTL-polling finalisation
        # (and result serialisation) observe.
        tally.new_fills.sort(key=lambda item: item[0])
        entries = host.entries
        for _, entry in tally.new_fills:
            entries[entry.key] = entry
        stats.insertions += len(tally.new_fills)
    if tally.buffer_entries:
        # Same story for the write buffer: drain order at the flush is the
        # order keys (re-)established their buffered entry.
        tally.buffer_entries.sort(key=lambda item: item[0])
        pending = host.buffer._pending
        for _, buffered in tally.buffer_entries:
            pending[buffered.key] = buffered
    if tally.buffered_writes:
        host.buffer.total_buffered += tally.buffered_writes
    if tally.estimator_ops:
        # Fold in first-observation order so new counter rows are created in
        # the scalar engine's dict order.
        tally.estimator_ops.sort(key=lambda item: item[0])
        estimator = host.estimator
        for _, name, reads, writes in tally.estimator_ops:
            _fold_estimator(estimator, name, reads, writes)
    if tally.poll_events:
        # Poll charges are the one varying-order float sum: replay them in
        # global stream order against a running accumulator (the per-entry
        # state those charges refresh was already settled by the kernel).
        tally.poll_events.sort()
        freshness = result.freshness_cost
        miss_const = ctx.miss_const
        polls_total = 0
        for _, polls in tally.poll_events:
            polls_total += polls
            freshness += polls * miss_const
        result.polls += polls_total
        result.freshness_cost = freshness


class VectorSimulation(Simulation):
    """Drop-in :class:`Simulation` that replays a compiled trace in spans.

    Accepts the same configuration as :class:`Simulation` but takes a
    :class:`~repro.workload.compiled.CompiledTrace` instead of a request
    iterable.  ``run()`` picks the vectorized path when the configuration is
    inside the vectorizable envelope (see :meth:`vector_eligible`) and
    otherwise replays the decompiled stream through the inherited scalar
    loop — either way the results are byte-identical to the scalar engine.
    """

    def __init__(self, trace: CompiledTrace, *args, **kwargs) -> None:
        if not isinstance(trace, CompiledTrace):
            raise ConfigurationError(
                "VectorSimulation requires a CompiledTrace; use "
                "compile_workload(workload, duration) first"
            )
        self.trace = trace
        super().__init__(trace.iter_requests(), *args, **kwargs)
        self.used_vector_path = False

    def vector_eligible(self) -> bool:
        """Whether this configuration can take the vectorized path.

        The envelope covers the paper's main sweeps: unbounded cache and
        tracker, fixed cost preset, ideal (or no) channel, no persistence or
        history retention, and one of the six kernel policies — with the
        adaptive policies on the exact tracker and TTLs within the staleness
        bound.  Everything else falls back to the scalar engine.
        """
        policy = self.policy
        policy_type = type(policy)
        if policy_type not in _VECTOR_POLICIES:
            return False
        if policy_type in (AdaptivePolicy, CacheStateAdaptivePolicy):
            if type(policy.estimator) is not ExactEWTracker:
                return False
        if policy.needs_future:
            return False
        if policy.ttl_mode is not None:
            ttl = policy._ttl_override
            if ttl is not None and ttl > self.staleness_bound:
                return False
        if self.cache.capacity is not None:
            return False
        if self.costs.breakdown is not None:
            return False
        if self.channel is not None and not self.channel.is_ideal:
            return False
        if self.tracker.capacity is not None:
            return False
        if self.datastore.retention is not None:
            return False
        if self._store is not None:
            return False
        if self.concurrency is not None:
            # In-flight fetches serialize fills through a time-ordered queue;
            # the columnar kernels assume instant fills.  Scalar fallback.
            return False
        return True

    def run(self):
        """Replay the trace; vectorized when eligible, scalar otherwise."""
        if not self.vector_eligible():
            return super().run()
        if self._has_run:
            raise ConfigurationError("a Simulation instance can only be run once")
        self._has_run = True
        self.used_vector_path = True
        self._bind_policy()
        self._refresh_next_due()
        if self.obs is not None:
            self._obs_begin("vector")
        self._run_spans()
        self._finalize()
        return self.result

    # ------------------------------------------------------------------ #
    # Span replay
    # ------------------------------------------------------------------ #
    def _run_spans(self) -> None:
        trace = self.trace
        total = len(trace)
        if total == 0:
            return
        times = trace.times
        if times.size > 1 and bool(np.any(np.diff(times) < 0)):
            # Same contract as the scalar loop's inlined ordering check.
            raise WorkloadError("request stream is not sorted by time")
        columns = _TraceColumns(trace)
        ctx = _ReplayContext(
            columns=columns,
            datastore=self.datastore,
            bound=self.staleness_bound,
            ttl=self._ttl_value,
            serve_const=self._serve_cost_const,
            miss_const=self._miss_cost_const,
        )
        host = _HostState(
            result=self.result,
            cache=self.cache,
            buffer=self.buffer,
            tracker=self.tracker,
            estimator=(
                self.policy.estimator if isinstance(self.policy, AdaptivePolicy) else None
            ),
            reacts=self.policy.reacts_to_writes,
            discard_on_miss_fill=self.discard_buffer_on_miss_fill,
        )
        obs = self.obs
        if self.policy.reacts_to_writes:
            start = 0
            while start < total:
                end = int(np.searchsorted(times, self._next_flush, side="left"))
                if end > start:
                    if obs is not None:
                        # Kernel stats fold into the window containing the
                        # span's first request (span-granularity attribution).
                        span_start = float(times[start])
                        if span_start >= obs.next_boundary:
                            obs.roll(span_start)
                    self._replay_reactive_span(ctx, host, start, end)
                    start = end
                    if start >= total:
                        break
                # The next request is at or past the flush boundary: run the
                # due background work exactly where the scalar loop would.
                self._advance_background_work(float(times[start]))
        else:
            self._replay_ttl_trace(ctx, host)
        self.clock.advance_to(float(times[-1]))

    def _replay_reactive_span(
        self, ctx: _ReplayContext, host: _HostState, start: int, end: int
    ) -> None:
        trace = ctx.trace
        span_is_read = trace.is_read[start:end]
        write_positions = np.flatnonzero(~span_is_read) + start
        read_positions = np.flatnonzero(span_is_read) + start
        _apply_span_writes(ctx, write_positions)
        tally = _SpanTally()
        tally.writes = int(write_positions.size)
        names = trace.key_names
        span_writes = dict(_group_by_key(trace, write_positions))
        for key_id, reads in _group_by_key(trace, read_positions):
            writes = span_writes.pop(key_id, _EMPTY_INDEX)
            _kernel_reactive(ctx, host, tally, key_id, names[key_id], reads, writes)
        for key_id, writes in span_writes.items():
            _kernel_reactive(ctx, host, tally, key_id, names[key_id], _EMPTY_INDEX, writes)
        _flush_tally(ctx, host, tally)

    def _replay_ttl_trace(self, ctx: _ReplayContext, host: _HostState) -> None:
        # A non-reacting policy has no flush boundaries and (here) no store,
        # so the whole trace is a single span.
        trace = ctx.trace
        write_positions = np.flatnonzero(~trace.is_read)
        read_positions = np.flatnonzero(trace.is_read)
        _apply_span_writes(ctx, write_positions)
        tally = _SpanTally()
        tally.writes = int(write_positions.size)
        names = trace.key_names
        expiry = self._ttl_expiry
        for key_id, reads in _group_by_key(trace, read_positions):
            if expiry:
                _kernel_ttl_expiry(ctx, host, tally, key_id, names[key_id], reads)
            else:
                _kernel_ttl_polling(ctx, host, tally, key_id, names[key_id], reads)
        _flush_tally(ctx, host, tally)
