"""Internal simulator events.

The simulator is request-driven: TTL expiries and polling refreshes are
accounted lazily (they never change which requests arrive, only the costs), so
the only genuine events besides requests are the periodic interval flushes of
the write-reactive policies, the delayed delivery of freshness messages when a
non-ideal channel is configured, and — when the concurrent-fetch model is
enabled — the completion of in-flight backend fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.backend.messages import Message


@dataclass(frozen=True, slots=True)
class FlushEvent:
    """An interval boundary at which buffered writes are acted upon."""

    time: float
    interval_index: int


@dataclass(slots=True)
class PendingDelivery:
    """A freshness message in flight on a delayed channel."""

    message: Message
    deliver_at: float
    applied: bool = False


@dataclass(order=True, slots=True)
class FetchCompletion:
    """An in-flight backend fetch finishing at ``done`` simulated time.

    Orders by ``(done, seq)`` so completion draining is deterministic even
    when several fetches finish at the same instant; ``seq`` is the fetch
    issue order.  ``fetch`` is the coordinator's in-flight record (kept out
    of the ordering on purpose).
    """

    done: float
    seq: int
    fetch: Any = field(compare=False)
