"""Internal simulator events.

The simulator is request-driven: TTL expiries and polling refreshes are
accounted lazily (they never change which requests arrive, only the costs), so
the only genuine events besides requests are the periodic interval flushes of
the write-reactive policies and the delayed delivery of freshness messages
when a non-ideal channel is configured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.messages import Message


@dataclass(frozen=True, slots=True)
class FlushEvent:
    """An interval boundary at which buffered writes are acted upon."""

    time: float
    interval_index: int


@dataclass(slots=True)
class PendingDelivery:
    """A freshness message in flight on a delayed channel."""

    message: Message
    deliver_at: float
    applied: bool = False
