"""Simulation clock.

A thin wrapper around "the current simulation time" that enforces
monotonicity: the simulator only ever moves time forward, and any attempt to
process an out-of-order request is a programming error surfaced immediately
rather than a silent accounting corruption.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimulationClock:
    """Monotonically non-decreasing simulation time."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current simulation time in seconds."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Advance the clock to ``time``.

        Raises:
            SimulationError: If ``time`` is earlier than the current time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot move simulation time backwards: {time} < {self._now}"
            )
        self._now = float(time)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now})"
