"""The cache-aside simulation loop.

The simulator replays a time-ordered request stream (Figure 1 of the paper):

* reads are served from the cache; a miss fetches the object from the backend
  and populates the cache,
* writes go straight to the backend, bypassing the cache, and
* the configured freshness policy keeps cached data within the staleness
  bound ``T`` — either with per-object TTL timers (TTL-expiry / TTL-polling)
  or by reacting to writes at interval boundaries (invalidate / update /
  adaptive / optimal, Figure 4).

Cost accounting follows §2.1: the freshness cost :math:`C_F` accumulates the
cost of every message or re-fetch performed *to keep data fresh* (TTL polls,
invalidates, updates, and the misses caused by stale data); the staleness cost
:math:`C_S` counts the misses that occurred because a cached object could not
be returned due to staleness.  Misses on objects that were never cached (or
were evicted) count toward the miss ratio but toward neither cost, matching
the paper's definitions.

TTL timers are accounted lazily rather than simulated as events: an expiry
only matters when the next read arrives, and the number of polls an entry has
performed is a pure function of elapsed time, so both can be settled when the
entry is next touched, evicted, or when the run ends.  This keeps the run time
proportional to the number of requests even for very small staleness bounds.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional

from repro.backend.buffer import WriteBuffer
from repro.backend.channel import Channel
from repro.backend.datastore import DataStore
from repro.backend.invalidation_tracker import InvalidationTracker
from repro.backend.messages import InvalidateMessage, UpdateMessage
from repro.cache.cache import Cache
from repro.cache.entry import CacheEntry, EntryState
from repro.cache.eviction import EvictionPolicy
from repro.concurrency.backend import BackendServer
from repro.concurrency.config import as_concurrency
from repro.concurrency.coordinator import FetchCoordinator
from repro.core.cost_model import CostModel
from repro.core.policy import Action, FreshnessPolicy, FutureIndex, PolicyContext
from repro.core.ttl import TTLPollingPolicy, account_entry_polls
from repro.errors import ConfigurationError, WorkloadError
from repro.obs.metrics import Histogram
from repro.obs.recorder import as_recorder
from repro.sim.clock import SimulationClock
from repro.sim.events import PendingDelivery
from repro.sim.results import SimulationResult
from repro.store.runtime import StoreRuntime
from repro.store.snapshot import StoreConfig
from repro.workload.base import OpType, Request


class Simulation:
    """Replay a request stream under a freshness policy and account its costs.

    The workload may be any iterable — a list, a lazily streaming generator
    from :meth:`~repro.workload.base.Workload.iter_requests`, or a trace file
    reader.  The stream is consumed incrementally and is **not** copied, so
    replaying tens of millions of requests runs in constant memory.  The one
    exception is a clairvoyant policy (``policy.needs_future``): it requires
    the full future request index, so the stream is materialized up front.

    Args:
        workload: Time-ordered request stream to replay.  Ordering is
            validated during replay; an out-of-order request raises
            :class:`~repro.errors.WorkloadError`.
        policy: The freshness policy under test.
        staleness_bound: The bound ``T`` in seconds that cached data must
            satisfy (also the TTL duration and the write-batching interval).
        costs: Cost model supplying ``c_m``, ``c_i``, ``c_u``.
        cache_capacity: Maximum number of cached objects (``None`` =
            unbounded).
        eviction: Eviction policy for the cache (default LRU).
        channel: Backend-to-cache message channel; ``None`` means ideal
            (instantaneous and lossless).
        tracker_capacity: Capacity of the backend's invalidated-key tracker
            (``None`` = exact tracking).
        duration: Simulated horizon ``T'``; defaults to the time of the last
            request.
        workload_name: Label recorded in the result (for reports).
        discard_buffer_on_miss_fill: Whether the backend drops a buffered
            write for a key once a miss has re-fetched that key within the
            same interval (the backend served that miss, so it knows the cache
            is fresh again).
        final_flush: Whether to flush the write buffer once more at the end of
            the run, matching the closed-form model that charges every
            interval containing a write.
        store: Optional persistence config (:class:`~repro.store.StoreConfig`).
            When given, every backend write is journaled to a write-ahead log
            and the datastore is snapshotted at ``snapshot_interval`` plus
            once at the end of the run, so the backend can be rebuilt
            byte-for-byte by :func:`repro.store.recover_datastore`.
        history_retention: Optional retention window for the datastore's
            per-key write history (see :class:`~repro.backend.datastore.DataStore`).
        obs: Optional observability settings — an
            :class:`~repro.obs.ObsConfig` (or a pre-built
            :class:`~repro.obs.ObsRecorder`).  When set, the run records
            windowed time-series, sampled request spans, and events into
            ``self.obs`` (see :mod:`repro.obs`); when ``None`` (default) the
            replay binds its plain hot path and pays zero overhead.  The
            recorder only observes result counters — replay results are
            byte-identical with observability on or off.
        concurrency: Optional in-flight fetch model — a
            :class:`~repro.concurrency.ConcurrencyConfig`.  When set, cache
            misses *occupy* the backend for a sampled service time (finite
            slot capacity, FIFO queueing), fetch completions become simulator
            events, stampede-mitigation policies apply, and per-read latency
            is recorded into the result's HDR buckets.  When ``None``
            (default) the replay binds the classic instant-fetch hot path —
            byte-identical to previous releases (test-pinned).
    """

    def __init__(
        self,
        workload: Iterable[Request],
        policy: FreshnessPolicy,
        staleness_bound: float,
        costs: Optional[CostModel] = None,
        cache_capacity: Optional[int] = None,
        eviction: Optional[EvictionPolicy] = None,
        channel: Optional[Channel] = None,
        tracker_capacity: Optional[int] = None,
        duration: Optional[float] = None,
        workload_name: str = "",
        discard_buffer_on_miss_fill: bool = True,
        final_flush: bool = True,
        store: Optional[StoreConfig] = None,
        history_retention: Optional[float] = None,
        obs: Optional[Any] = None,
        concurrency: Optional[Any] = None,
    ) -> None:
        if staleness_bound <= 0:
            raise ConfigurationError(
                f"staleness_bound must be positive, got {staleness_bound}"
            )
        self.policy = policy
        # Clairvoyant policies need the full future request index, so only
        # they force materialization; everyone else replays the stream as-is.
        if policy.needs_future:
            self.requests: Optional[List[Request]] = list(workload)
            self._stream: Iterable[Request] = self.requests
        else:
            self.requests = None
            self._stream = workload
        self.staleness_bound = float(staleness_bound)
        self.costs = costs if costs is not None else CostModel()
        self.channel = channel
        self.workload_name = workload_name
        self.discard_buffer_on_miss_fill = discard_buffer_on_miss_fill
        self.final_flush = final_flush

        if duration is None:
            # For a streaming workload the horizon is unknown up front; it is
            # finalized from the clock (the last request time) after replay.
            if self.requests is not None:
                duration = self.requests[-1].time if self.requests else 0.0
            else:
                duration = 0.0
        self.duration = float(duration)

        self.obs = as_recorder(obs)
        self.datastore = DataStore(retention=history_retention)
        self._store: Optional[StoreRuntime] = None
        if store is not None:
            self._store = StoreRuntime(store, self.costs)
            self._store.attach(self.datastore)
            if self.obs is not None:
                self._store.attach_obs(self.obs)
        self.cache = Cache(capacity=cache_capacity, eviction=eviction, on_evict=self._on_evict)
        self.buffer = WriteBuffer()
        self.tracker = InvalidationTracker(capacity=tracker_capacity)
        self.clock = SimulationClock()
        self.result = SimulationResult(
            policy_name=policy.name,
            workload_name=workload_name,
            staleness_bound=self.staleness_bound,
            duration=self.duration,
        )
        self._pending_deliveries: List[PendingDelivery] = []
        self._next_flush = self.staleness_bound
        self._next_due = math.inf
        self._has_run = False

        # Concurrent-fetch model (None keeps the instant-fetch hot path).
        self.concurrency = as_concurrency(concurrency)
        self._fetches: Optional[FetchCoordinator] = None
        self._latency: Optional[Histogram] = None
        self.backend_server: Optional[BackendServer] = None
        if self.concurrency is not None:
            self.backend_server = BackendServer(self.concurrency.capacity)
            self._fetches = FetchCoordinator(
                self.concurrency, self.backend_server, self.concurrency.seed
            )
            self._latency = Histogram("read_latency")
            # Share the live bucket dict so windowed telemetry can diff
            # per-window latency without copying on the hot path.
            self.result.latency_buckets = self._latency.counts

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Replay the whole request stream and return the accumulated result.

        The loop is the single-cache hot path: the time-ordering check of
        :func:`~repro.workload.base.ensure_sorted` is inlined (one float
        compare per request instead of an extra generator frame), background
        work is only entered when a flush/snapshot is actually due or a
        delivery is in flight, and the read/write dispatch avoids the
        ``is_write`` property call.  Replay semantics are unchanged — the
        pinned equivalence tests hold byte-for-byte.
        """
        if self._has_run:
            raise ConfigurationError("a Simulation instance can only be run once")
        self._has_run = True
        self._bind_policy()
        if self._fetches is not None:
            # The concurrent model shadows the read path and background
            # advance with instance attributes; with concurrency off these
            # attributes never exist and every caller (including the obs
            # wrappers and _finalize) resolves the plain class methods —
            # byte-identical to previous releases.
            self._process_read = self._process_read_concurrent
            self._process_write = self._process_write_concurrent
            self._advance_background_work = self._advance_background_concurrent
        self._refresh_next_due()
        clock = self.clock
        # Observability binds wrapper methods *instead of* the plain ones:
        # with obs disabled this loop is byte-for-byte the plain hot path.
        if self.obs is not None:
            self._obs_begin("scalar")
            process_read = self._obs_process_read
            process_write = self._obs_process_write
        else:
            process_read = self._process_read
            process_write = self._process_write
        advance_background = self._advance_background_work
        write_op = OpType.WRITE
        previous = float("-inf")
        for index, request in enumerate(self._stream):
            time = request.time
            if time < previous:
                raise WorkloadError(
                    f"request stream is not sorted by time at index {index}: "
                    f"{time} < {previous}"
                )
            previous = time
            if self._pending_deliveries or time >= self._next_due:
                advance_background(time)
            clock.advance_to(time)
            if request.op is write_op:
                process_write(request)
            else:
                process_read(request)
        self._finalize()
        return self.result

    # ------------------------------------------------------------------ #
    # Observability wrappers (only ever bound when a recorder is attached)
    # ------------------------------------------------------------------ #
    def _obs_begin(self, engine: str) -> None:
        self.obs.attach((("cache", self.result, self.cache.stats),))
        self.obs.run_start(
            0.0,
            policy=self.policy.name,
            workload=self.workload_name,
            engine=engine,
            nodes=1,
        )

    def _obs_process_read(self, request: Request) -> None:
        obs = self.obs
        time = request.time
        if time >= obs.next_boundary:
            obs.roll(time)
        token = obs.read_begin()
        self._process_read(request)
        obs.read_end(time, request.key, token)

    def _obs_process_write(self, request: Request) -> None:
        obs = self.obs
        time = request.time
        if time >= obs.next_boundary:
            obs.roll(time)
        span = obs.write_begin()
        self._process_write(request)
        obs.write_end(time, request.key, span)

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _bind_policy(self) -> None:
        future = (
            FutureIndex.from_requests(self.requests)
            if self.policy.needs_future and self.requests is not None
            else None
        )
        context = PolicyContext(
            costs=self.costs,
            staleness_bound=self.staleness_bound,
            cache=self.cache,
            datastore=self.datastore,
            tracker=self.tracker,
            future=future,
        )
        self.policy.bind(context)
        # Hot-path precomputation: observation hooks that are base-class
        # no-ops are skipped entirely, the fixed-preset serve cost (which
        # ignores its size arguments) collapses to a constant, and flush
        # actions dispatch through a handler table.
        policy_cls = type(self.policy)
        self._observe_read = (
            self.policy.observe_read
            if policy_cls.observe_read is not FreshnessPolicy.observe_read
            else None
        )
        self._observe_write = (
            self.policy.observe_write
            if policy_cls.observe_write is not FreshnessPolicy.observe_write
            else None
        )
        self._settles_ttl = self.policy.ttl_mode is not None
        self._ttl_expiry = self.policy.ttl_mode == "expiry"
        # TTL duration is fixed once bound (explicit override or the run's
        # staleness bound), so resolve the property once.
        self._ttl_value = (
            self.policy.ttl if self.policy.ttl_mode is not None else math.inf
        )
        self._poll_ttl = (
            self._ttl_value if isinstance(self.policy, TTLPollingPolicy) else None
        )
        self._serve_cost_const = (
            self.costs.serve_cost() if self.costs.breakdown is None else None
        )
        self._miss_cost_const = (
            self.costs.miss_cost() if self.costs.breakdown is None else None
        )
        self._cache_peek = self.cache.raw_getter()
        self._action_handlers = {
            Action.NOTHING: None,
            Action.INVALIDATE: self._send_invalidate,
            Action.UPDATE: self._send_update,
        }

    def _refresh_next_due(self) -> None:
        """Recompute the earliest time background work must run."""
        next_flush = self._next_flush if self.policy.reacts_to_writes else math.inf
        next_snapshot = self._store.next_snapshot if self._store else math.inf
        self._next_due = next_flush if next_flush <= next_snapshot else next_snapshot

    # ------------------------------------------------------------------ #
    # Background work: interval flushes and delayed message delivery
    # ------------------------------------------------------------------ #
    def _advance_background_work(self, until: float) -> None:
        """Run interval flushes, snapshots, and deliveries due before ``until``.

        Flushes and snapshots are interleaved in time order (flush first on a
        tie, so a snapshot observes the flushed state of its instant).
        """
        reacts = self.policy.reacts_to_writes
        while True:
            next_flush = self._next_flush if reacts else math.inf
            next_snapshot = self._store.next_snapshot if self._store else math.inf
            if min(next_flush, next_snapshot) > until:
                break
            if next_flush <= next_snapshot:
                self._deliver_messages(next_flush)
                self._flush(next_flush)
                self._next_flush += self.staleness_bound
            else:
                self._store.checkpoint(next_snapshot, self.datastore)
        self._refresh_next_due()
        self._deliver_messages(until)

    def _flush(self, flush_time: float) -> None:
        """Act on every key written during the interval ending at ``flush_time``.

        Actions dispatch through the handler table built at bind time
        (``None`` marks the do-nothing action, which only counts).
        """
        handlers = self._action_handlers
        decide = self.policy.decide
        for buffered in self.buffer.drain():
            handler = handlers[decide(buffered.key, flush_time)]
            if handler is None:
                self.result.decisions_nothing += 1
            else:
                handler(buffered.key, buffered.key_size, flush_time)

    def _send_invalidate(self, key: str, key_size: int, time: float) -> None:
        if self.tracker.is_invalidated(key):
            # The backend already invalidated this key and the cache has not
            # re-fetched it since, so a second invalidate is redundant (§3.1).
            self.result.suppressed_invalidates += 1
            return
        self.result.invalidates_sent += 1
        self.result.freshness_cost += self.costs.invalidate_cost(key_size)
        self.tracker.mark_invalidated(key, time)
        message = InvalidateMessage(
            key=key, sent_at=time, key_size=key_size, version=self.datastore.latest_version(key)
        )
        if self.datastore.journal is not None:
            self.datastore.journal.log_message("invalidate", key, time, message.version)
        self._transmit(message)

    def _send_update(self, key: str, key_size: int, time: float) -> None:
        value_size = self.datastore.value_size(key)
        self.result.updates_sent += 1
        self.result.freshness_cost += self.costs.update_cost(key_size, value_size)
        # An update carries the latest value, so even a previously invalidated
        # cached copy becomes valid again once it is applied.
        self.tracker.mark_refetched(key)
        message = UpdateMessage(
            key=key,
            sent_at=time,
            key_size=key_size,
            value_size=value_size,
            version=self.datastore.latest_version(key),
        )
        if self.datastore.journal is not None:
            self.datastore.journal.log_message("update", key, time, message.version)
        self._transmit(message)

    def _transmit(self, message) -> None:
        """Push a message through the channel (or apply it immediately)."""
        if self.channel is None:
            self._apply_message(message, message.sent_at)
            return
        record = self.channel.send(message)
        if not record.delivered:
            self.result.messages_dropped += 1
            return
        if record.deliver_at <= message.sent_at:
            self._apply_message(message, message.sent_at)
        else:
            self._pending_deliveries.append(
                PendingDelivery(message=message, deliver_at=record.deliver_at)
            )

    def _deliver_messages(self, until: float) -> None:
        """Apply in-flight messages whose delivery time has arrived."""
        if not self._pending_deliveries:
            return
        remaining: List[PendingDelivery] = []
        for pending in self._pending_deliveries:
            if pending.deliver_at <= until:
                self._apply_message(pending.message, pending.deliver_at)
            else:
                remaining.append(pending)
        self._pending_deliveries = remaining

    def _apply_message(self, message, time: float) -> None:
        """Apply a delivered freshness message to the cache."""
        if isinstance(message, UpdateMessage):
            applied = self.cache.apply_update(
                message.key, version=message.version, time=time, value_size=message.value_size
            )
            if not applied:
                self.result.updates_wasted += 1
        else:
            self.cache.apply_invalidate(message.key, time)

    # ------------------------------------------------------------------ #
    # Request processing
    # ------------------------------------------------------------------ #
    def _process_write(self, request: Request) -> None:
        key, time = request.key, request.time
        self.result.writes += 1
        self.datastore.write(key, time, request.value_size)
        if self._observe_write is not None:
            self._observe_write(key, time)
        if self.policy.reacts_to_writes:
            self.buffer.record_write(
                key,
                time,
                key_size=request.key_size,
                value_size=request.value_size,
            )

    def _process_read(self, request: Request) -> None:
        # Loop-local aliasing: each of these attribute chains would otherwise
        # be re-resolved per request, and reads dominate the stream.
        result = self.result
        datastore = self.datastore
        key, time, key_size = request.key, request.time, request.key_size

        result.reads += 1
        if self._observe_read is not None:
            self._observe_read(key, time)
        serve = self._serve_cost_const
        if serve is None:
            serve = self.costs.serve_cost(key_size, datastore.value_size(key))
        result.useful_work += serve

        if self._settles_ttl:
            self._settle_ttl_state(key, time)
        entry, outcome = self.cache.lookup(key, time)
        if outcome == "hit":
            result.hits += 1
            bound = self.staleness_bound
            # ``is_fresh`` is trivially true when the entry's view is within
            # the bound; the precheck skips the call on that common case.
            if time - bound > entry.as_of and not datastore.is_fresh(
                key, entry.as_of, time, bound
            ):
                result.staleness_violations += 1
            return

        version, backend_value_size = datastore.read(key, time)
        if outcome == "stale_miss":
            result.stale_misses += 1
            result.stale_refetches += 1
            result.freshness_cost += self.costs.miss_cost(key_size, backend_value_size)
        else:
            result.cold_misses += 1
            result.cold_miss_cost += self.costs.miss_cost(key_size, backend_value_size)
        self.cache.fill(
            key,
            version=version,
            time=time,
            key_size=key_size,
            value_size=backend_value_size,
        )
        self.tracker.mark_refetched(key)
        if self.discard_buffer_on_miss_fill and self.policy.reacts_to_writes:
            # The backend just served this key's latest value; any write
            # buffered earlier in the interval no longer needs a message.
            self.buffer.discard(key)

    # ------------------------------------------------------------------ #
    # Concurrent-fetch request processing (bound only when enabled)
    # ------------------------------------------------------------------ #
    def _process_read_concurrent(self, request: Request) -> None:
        """The read path under the in-flight fetch model.

        Mirrors :meth:`_process_read` op-for-op on the hit path, but misses
        *issue* a backend fetch (classified and charged at issue time, when
        the backend snapshot is taken) whose fill lands at its completion
        time.  Stampede policies decide whether concurrent misses on the
        same key coalesce, serve the resident stale copy, or wait.
        """
        result = self.result
        datastore = self.datastore
        fetches = self._fetches
        key, time, key_size = request.key, request.time, request.key_size

        if fetches.next_done <= time:
            self._apply_fetch_completions(time)

        result.reads += 1
        if self._observe_read is not None:
            self._observe_read(key, time)
        serve = self._serve_cost_const
        if serve is None:
            serve = self.costs.serve_cost(key_size, datastore.value_size(key))
        result.useful_work += serve

        if self._settles_ttl:
            self._settle_ttl_state(key, time)
        entry, outcome = self.cache.lookup(key, time)
        bound = self.staleness_bound
        latency = self._latency
        if outcome == "hit":
            result.hits += 1
            if time - bound > entry.as_of and not datastore.is_fresh(
                key, entry.as_of, time, bound
            ):
                result.staleness_violations += 1
            latency.observe(0.0)
            if (
                fetches.early_expiry
                and fetches.lookup(key) is None
                and fetches.should_refresh_early(time, entry.as_of, bound)
            ):
                self._issue_refresh(key, time, key_size)
                result.early_refreshes += 1
            return

        stale_entry = entry if outcome == "stale_miss" else None
        in_flight = fetches.lookup(key) if fetches.coalesces else None
        if in_flight is not None:
            # Follower: ride the in-flight fetch instead of dogpiling the
            # backend.  The miss is still classified (the cache did miss)
            # but no fetch cost is charged — the leader already paid it.
            result.coalesced_reads += 1
            if outcome == "stale_miss":
                result.stale_misses += 1
            else:
                result.cold_misses += 1
            if fetches.followers_serve_stale and stale_entry is not None:
                result.stale_serves += 1
                latency.observe(0.0)
                if time - bound > stale_entry.as_of and not datastore.is_fresh(
                    key, stale_entry.as_of, time, bound
                ):
                    result.staleness_violations += 1
            else:
                latency.observe(in_flight.done - time)
            return

        # Leader: read the backend snapshot now, charge the miss now, and
        # let the fill land when the fetch completes.
        version, backend_value_size = datastore.read(key, time)
        if outcome == "stale_miss":
            result.stale_misses += 1
            result.stale_refetches += 1
            result.freshness_cost += self.costs.miss_cost(key_size, backend_value_size)
        else:
            result.cold_misses += 1
            result.cold_miss_cost += self.costs.miss_cost(key_size, backend_value_size)
        fetch = fetches.issue(key, time, version, backend_value_size, key_size)
        result.backend_fetches += 1
        if fetches.leader_serves_stale and stale_entry is not None:
            result.stale_serves += 1
            latency.observe(0.0)
            if time - bound > stale_entry.as_of and not datastore.is_fresh(
                key, stale_entry.as_of, time, bound
            ):
                result.staleness_violations += 1
        else:
            latency.observe(fetch.done - time)

    def _process_write_concurrent(self, request: Request) -> None:
        """Drain due fetch completions, then run the plain write path."""
        if self._fetches.next_done <= request.time:
            self._apply_fetch_completions(request.time)
        Simulation._process_write(self, request)

    def _issue_refresh(self, key: str, time: float, key_size: int) -> None:
        """Background refresh (early expiry): freshness work, not a miss."""
        version, value_size = self.datastore.read(key, time)
        self.result.freshness_cost += self.costs.miss_cost(key_size, value_size)
        self.result.backend_fetches += 1
        self._fetches.issue(key, time, version, value_size, key_size)

    def _apply_fetch_completions(self, until: float) -> None:
        """Land fills for every fetch completing at or before ``until``.

        The fill carries the backend snapshot taken at issue time, so the
        entry's ``as_of`` is the issue instant.  The tracker learns about the
        refetch unconditionally (as in the instant-fetch path — the backend
        must re-invalidate on the *next* write, or a fill racing an
        invalidate would suppress every future invalidate while the cache
        holds stale data).  The buffered-write discard, however, only applies
        when the fetched version is still the backend's latest: a write that
        raced the fetch still needs its freshness message.
        """
        discard = self.discard_buffer_on_miss_fill and self.policy.reacts_to_writes
        datastore = self.datastore
        for fetch in self._fetches.drain(until):
            key = fetch.key
            self.cache.fill(
                key,
                version=fetch.version,
                time=fetch.issued_at,
                key_size=fetch.key_size,
                value_size=fetch.value_size,
            )
            self.tracker.mark_refetched(key)
            if discard and datastore.latest_version(key) == fetch.version:
                self.buffer.discard(key)

    def _advance_background_concurrent(self, until: float) -> None:
        """Background advance with fetch completions interleaved in time order.

        Same flush/snapshot schedule as :meth:`_advance_background_work`,
        with completions applied first on ties so a flush decision observes
        every fill that landed at or before its instant.
        """
        reacts = self.policy.reacts_to_writes
        fetches = self._fetches
        while True:
            next_flush = self._next_flush if reacts else math.inf
            next_snapshot = self._store.next_snapshot if self._store else math.inf
            next_done = fetches.next_done
            if min(next_flush, next_snapshot, next_done) > until:
                break
            if next_done <= next_flush and next_done <= next_snapshot:
                self._apply_fetch_completions(next_done)
            elif next_flush <= next_snapshot:
                self._deliver_messages(next_flush)
                self._flush(next_flush)
                self._next_flush += self.staleness_bound
            else:
                self._store.checkpoint(next_snapshot, self.datastore)
        self._refresh_next_due()
        self._deliver_messages(until)
        self._apply_fetch_completions(until)

    # ------------------------------------------------------------------ #
    # Lazy TTL accounting
    # ------------------------------------------------------------------ #
    def _settle_ttl_state(self, key: str, now: float) -> None:
        """Settle lazy TTL expiry or polling costs for ``key`` before a lookup."""
        if self.policy.ttl_mode is None:
            return
        entry = self._cache_peek(key)
        if entry is None:
            return
        if self._ttl_expiry:
            # Inlined ``policy.is_expired`` against the TTL resolved at bind
            # time (the duration is constant for the whole run).
            if entry.state is EntryState.VALID and now >= entry.fetched_at + self._ttl_value:
                self.cache.expire(key)
        else:
            self._account_polls(entry, now)

    def _account_polls(self, entry: CacheEntry, now: float) -> None:
        """Charge the polls an entry performed since the last accounting point.

        Delegates the poll arithmetic to
        :func:`~repro.core.ttl.account_entry_polls` (the shared, bind-time-TTL
        twin of the policy methods), then refreshes the entry's backend
        version as of the last charged poll.
        """
        ttl = self._poll_ttl
        if ttl is None:
            return
        last_poll = account_entry_polls(
            entry, now, ttl, self.result, self.costs, self._miss_cost_const
        )
        if last_poll is not None:
            version = self.datastore.version_at(entry.key, last_poll)
            if version > entry.version:
                entry.version = version

    def _on_evict(self, entry: CacheEntry, time: float) -> None:
        """Settle outstanding polling costs when an entry is evicted."""
        if self.policy.ttl_mode == "polling":
            self._account_polls(entry, time)

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #
    def _finalize(self) -> None:
        end_time = max(self.duration, self.clock.now)
        self.clock.advance_to(end_time)
        self._advance_background_work(end_time)
        if self.policy.reacts_to_writes and self.final_flush and len(self.buffer):
            self._flush(end_time)
        self._deliver_messages(end_time)
        if self.policy.ttl_mode == "polling":
            for entry in list(self.cache.entries()):
                self._account_polls(entry, end_time)
        if self._store is not None:
            self._store.checkpoint(end_time, self.datastore)
            stats = self._store.stats()
            self.result.persistence_cost = stats["persistence_cost"]
            self.result.wal_appends = stats["wal_appends"]
            self.result.wal_flushes = stats["wal_flushes"]
            self.result.snapshots_taken = stats["snapshots"]
            self._store.close()
        self.result.duration = end_time
        self.result.cache_stats = self.cache.stats.as_dict()
        if self._latency is not None:
            self.result.latency_count = self._latency.count
            self.result.latency_sum = self._latency.sum
        if self.obs is not None:
            self.obs.finish(end_time)

    def store_stats(self) -> Optional[Dict[str, Any]]:
        """Deterministic persistence counters (``None`` without a store)."""
        return self._store.stats() if self._store is not None else None
