"""Discrete-event simulation of a cache-aside deployment.

The simulator replays a time-ordered request stream against the cache and the
backend data store under a chosen freshness policy, and accounts for the
freshness cost :math:`C_F` and staleness cost :math:`C_S` exactly as the paper
defines them in §2.1.  It is the substrate on which Figures 2, 3, and 5 are
regenerated.
"""

from repro.sim.clock import SimulationClock
from repro.sim.events import FlushEvent, PendingDelivery
from repro.sim.results import SimulationResult
from repro.sim.simulation import Simulation
from repro.sim.vector import VectorSimulation
from repro.sim.runner import PolicyRun, compare_policies, sweep_staleness_bounds

__all__ = [
    "FlushEvent",
    "PendingDelivery",
    "PolicyRun",
    "Simulation",
    "SimulationClock",
    "SimulationResult",
    "VectorSimulation",
    "compare_policies",
    "sweep_staleness_bounds",
]
