"""Exception hierarchy shared across the package.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers embedding the library can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class SimulationError(ReproError):
    """Raised when a simulation is driven incorrectly at runtime."""


class WorkloadError(ReproError):
    """Raised when a workload generator or trace file is malformed."""


class SketchError(ReproError):
    """Raised when a sketch is queried or updated incorrectly."""


class BottleneckError(ReproError):
    """Raised when bottleneck probes cannot produce a measurement."""


class ClusterError(ReproError):
    """Raised when a cluster simulation is misconfigured or driven badly."""


class StoreError(ReproError):
    """Raised when the durable persistence layer hits a malformed log or
    snapshot, or is asked to recover from a directory with nothing in it."""
