"""On-disk record format of the write-ahead log.

The WAL is a magic header followed by a sequence of length-prefixed,
CRC-checksummed records, in the spirit of ZODB's append-only transaction log:

.. code-block:: text

    +----------+----------------+----------------+---------------------+
    | MAGIC    | length (u32le) | crc32 (u32le)  | payload (JSON) ...  |
    +----------+----------------+----------------+---------------------+

Each payload is a compact, canonically-sorted JSON object carrying at least a
log sequence number (``"lsn"``) and a record kind (``"k"``).  The LSN lives in
the payload — not in the framing — so that log compaction can rewrite the file
while keeping snapshot watermarks meaningful.

Reading tolerates a *torn tail*: a crash mid-append leaves a truncated or
corrupt final record, and replay stops cleanly at the last record whose
checksum verifies — everything before it is durable, everything after it never
was.  A bad magic header, by contrast, means the file is not a WAL at all and
raises :class:`~repro.errors.StoreError`.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.errors import StoreError

#: File magic identifying a repro WAL (includes a format version).
MAGIC = b"RPROWAL1\n"

#: Per-record framing: payload length and CRC-32 of the payload bytes.
_FRAME = struct.Struct("<II")

#: Record kinds appearing in the log.
KIND_WRITE = "w"
KIND_READS = "r"
KIND_MESSAGE = "m"


def encode_record(payload: Dict[str, Any]) -> bytes:
    """Frame one payload as a length-prefixed, checksummed record."""
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _FRAME.pack(len(data), zlib.crc32(data)) + data


@dataclass(slots=True)
class WalScan:
    """Outcome of scanning a WAL file (filled in by :func:`scan_wal`)."""

    records: int = 0
    bytes_read: int = 0
    #: Bytes of a truncated or checksum-failing tail that were ignored.
    torn_bytes: int = 0
    #: Highest LSN seen among the complete records.
    last_lsn: int = 0


def scan_wal(path: str | Path, scan: Optional[WalScan] = None) -> Iterator[Dict[str, Any]]:
    """Yield every complete record payload in ``path``, in log order.

    A missing file yields nothing (an empty log is a valid log).  A torn tail
    stops iteration silently; pass a :class:`WalScan` to observe how many
    bytes were dropped.

    Raises:
        StoreError: If the file exists but does not start with the WAL magic.
    """
    path = Path(path)
    if scan is None:
        scan = WalScan()
    if not path.exists():
        return
    data = path.read_bytes()
    if not data.startswith(MAGIC):
        raise StoreError(f"{path} is not a write-ahead log (bad magic)")
    offset = len(MAGIC)
    total = len(data)
    while offset < total:
        if offset + _FRAME.size > total:
            scan.torn_bytes = total - offset
            return
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            scan.torn_bytes = total - offset
            return
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            # A checksum failure makes every later record suspect too: stop
            # replay here, exactly as a real WAL reader would.
            scan.torn_bytes = total - offset
            return
        record = json.loads(payload)
        scan.records += 1
        scan.bytes_read = end
        scan.last_lsn = max(scan.last_lsn, int(record.get("lsn", 0)))
        offset = end
        yield record
