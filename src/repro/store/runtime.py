"""The persistence runtime a simulator embeds when a store is configured.

:class:`StoreRuntime` bundles the WAL, the datastore journal, and the
snapshot manager behind the two calls the replay loops need: a snapshot
schedule (``next_snapshot`` / ``checkpoint``) interleaved with the interval
flushes, and a ``stats()`` dict merged into result rows.  Keeping it out of
the simulators proper means the single-cache and cluster loops share one
persistence implementation.
"""

from __future__ import annotations

import logging
import math
import time as time_module
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.backend.datastore import DataStore
from repro.core.cost_model import CostModel
from repro.store.snapshot import SnapshotManager, StoreConfig, serialize_datastore
from repro.store.wal import Journal, WriteAheadLog

_LOG = logging.getLogger(__name__)


class StoreRuntime:
    """Owns one run's WAL, journal, and snapshot schedule.

    Args:
        config: Store layout and cadence.
        costs: Cost model charged for WAL appends and flushes.
    """

    def __init__(self, config: StoreConfig, costs: Optional[CostModel] = None) -> None:
        self.config = config
        Path(config.root).mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(
            config.wal_path,
            flush_every=config.flush_every,
            costs=costs,
            fsync=config.fsync,
        )
        self.journal = Journal(self.wal)
        self.manager = SnapshotManager(config)
        self._interval = config.snapshot_interval
        self.next_snapshot = self._interval if self._interval is not None else math.inf
        self._last_checkpoint_time: Optional[float] = None
        self._last_checkpoint_lsn = -1
        self._obs = None

    def attach(self, datastore: DataStore) -> None:
        """Start journaling the datastore's writes and reads."""
        datastore.attach_journal(self.journal)

    def attach_obs(self, recorder: Any) -> None:
        """Fold WAL-sync and snapshot wall timings into an obs recorder.

        Timings are wall-clock (like the bench numbers) and deliberately
        excluded from ``stats()`` — they feed histograms and events only, so
        deterministic result rows stay deterministic.
        """
        self._obs = recorder

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def checkpoint(
        self,
        time: float,
        datastore: DataStore,
        nodes: Optional[Dict[str, Any]] = None,
        extra_fn: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        """Sync the WAL and write one snapshot of the current state.

        Idempotent per durable point: a second checkpoint at the same
        simulated time *and* WAL position is skipped, so an interval
        snapshot followed by a crash checkpoint at the same boundary stays
        byte-identical to an uninterrupted run.  If anything was journaled
        since the same-instant snapshot (e.g. a final flush's messages), a
        fresh snapshot is taken — otherwise those records would sit past the
        watermark and make the store unresumable.
        """
        obs = self._obs
        sync_started = time_module.perf_counter() if obs is not None else 0.0
        self.journal.sync()
        if obs is not None:
            obs.observe_store("wal_sync_seconds", time_module.perf_counter() - sync_started)
        if self._last_checkpoint_time == time and self.wal.last_lsn == self._last_checkpoint_lsn:
            if self._interval is not None and self.next_snapshot <= time:
                self.next_snapshot += self._interval  # pragma: no cover - defensive
            return
        extra = dict(extra_fn()) if extra_fn is not None else {}
        if self.next_snapshot <= time and self._interval is not None:
            self.next_snapshot += self._interval
        extra["next_snapshot"] = (
            self.next_snapshot if math.isfinite(self.next_snapshot) else None
        )
        snap_started = time_module.perf_counter() if obs is not None else 0.0
        self.manager.take(
            time=time,
            wal_lsn=self.wal.last_lsn,
            datastore=serialize_datastore(datastore),
            nodes=nodes or {},
            extra=extra,
            journal=self.journal.state(),
        )
        self._last_checkpoint_time = time
        self._last_checkpoint_lsn = self.wal.last_lsn
        _LOG.debug("checkpoint at t=%s (seq=%d, wal_lsn=%d)",
                   time, self.manager.last_seq, self.wal.last_lsn)
        if self.config.compact:
            self.wal.compact(self.wal.last_lsn)
        if obs is not None:
            seconds = time_module.perf_counter() - snap_started
            obs.observe_store("snapshot_seconds", seconds)
            if obs.record_global:
                obs.event(
                    time, "snapshot", seq=self.manager.last_seq, wal_lsn=self.wal.last_lsn
                )

    # ------------------------------------------------------------------ #
    # Resume support
    # ------------------------------------------------------------------ #
    def restore(
        self,
        journal_state: Dict[str, Any],
        next_snapshot: Optional[float],
        wal_lsn: int,
    ) -> None:
        """Continue counting where the crashed process stopped.

        ``wal_lsn`` re-seeds the LSN counter: compaction may have emptied the
        log file, so the scan-on-open cannot always recover the high-water
        mark on its own.
        """
        self.journal.load_state(journal_state)
        self.next_snapshot = next_snapshot if next_snapshot is not None else math.inf
        self.wal._last_lsn = max(self.wal._last_lsn, int(wal_lsn))

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def persistence_cost(self) -> float:
        """Accumulated WAL append + flush cost in cost-model units."""
        return self.wal.stats.persistence_cost

    def stats(self) -> Dict[str, Any]:
        """Deterministic store counters for result rows (no paths, no wall time)."""
        # Compaction counters are deliberately absent: compaction runs *after*
        # its snapshot is written (the snapshot is the watermark), so its
        # counters are the one piece of activity a crash-resumed run cannot
        # replay identically.  They remain visible on ``wal.stats`` directly.
        wal = self.wal.stats
        return {
            "wal_appends": wal.appends,
            "wal_flushes": wal.flushes,
            "wal_bytes_written": wal.bytes_written,
            "persistence_cost": wal.persistence_cost,
            "writes_logged": self.journal.writes_logged,
            "reads_logged": self.journal.reads_logged,
            "messages_logged": self.journal.messages_logged,
            "snapshots": self.manager.last_seq,
        }

    def close(self) -> None:
        """Flush and release the WAL file handle."""
        self.wal.close()
