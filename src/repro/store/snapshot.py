"""Snapshot engine: MVCC-style full-state checkpoints of a running simulation.

A snapshot serializes the shared :class:`~repro.backend.datastore.DataStore`
(every key's full versioned write history) plus, for a cluster, each reachable
node's volatile state — cache entries, write buffer, invalidation tracker,
in-flight deliveries, result counters, and channel state.  Together with the
WAL tail after the snapshot's LSN watermark this is enough to rebuild the
backend byte-for-byte and to resume an interrupted run with identical
counters.

Snapshots are plain JSON files named ``snapshot-<seq>.json`` under the store
root, written atomically (tmp + rename).  Old snapshots are kept: warm node
rejoin restores a node from the *last snapshot taken while that node was
still alive*, which is generally older than the latest one.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.backend.buffer import BufferedWrite
from repro.backend.datastore import DataStore, KeyHistory
from repro.backend.messages import InvalidateMessage, UpdateMessage
from repro.cache.entry import CacheEntry, EntryState
from repro.errors import StoreError
from repro.sim.events import PendingDelivery

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")


@dataclass(frozen=True, slots=True)
class StoreConfig:
    """Configuration of the durable persistence layer.

    Args:
        root: Directory holding the WAL and the snapshots.
        snapshot_interval: Simulated seconds between snapshots (``None`` takes
            only the final checkpoint at the end of the run).
        flush_every: WAL records per group commit.
        compact: Whether each snapshot truncates the WAL at its watermark.
        fsync: Whether WAL flushes call ``os.fsync``.
    """

    root: str
    snapshot_interval: Optional[float] = None
    flush_every: int = 64
    compact: bool = True
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.snapshot_interval is not None and self.snapshot_interval <= 0:
            raise StoreError(
                f"snapshot_interval must be positive, got {self.snapshot_interval}"
            )

    @property
    def wal_path(self) -> Path:
        """Location of the write-ahead log inside the store root."""
        return Path(self.root) / "wal.log"


@dataclass(slots=True)
class Snapshot:
    """One full-state checkpoint (in-memory form of a snapshot file)."""

    seq: int
    time: float
    wal_lsn: int
    datastore: Dict[str, Any]
    nodes: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    journal: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Flatten for the JSON file."""
        return {
            "kind": "repro-snapshot",
            "seq": self.seq,
            "time": self.time,
            "wal_lsn": self.wal_lsn,
            "datastore": self.datastore,
            "nodes": self.nodes,
            "extra": self.extra,
            "journal": self.journal,
        }


# --------------------------------------------------------------------- #
# Datastore serialization
# --------------------------------------------------------------------- #
def serialize_datastore(datastore: DataStore) -> Dict[str, Any]:
    """Flatten a datastore — full versioned histories included."""
    return {
        "default_value_size": datastore.default_value_size,
        "retention": datastore.retention,
        "total_writes": datastore.total_writes,
        "total_reads": datastore.total_reads,
        "pruned_writes": datastore.pruned_writes,
        "histories": {
            key: {
                "pruned": history.pruned,
                "value_size": history.value_size,
                "write_times": list(history.write_times),
            }
            for key, history in datastore._histories.items()
        },
    }


def restore_datastore(datastore: DataStore, data: Dict[str, Any]) -> None:
    """Rebuild a datastore's state in place from :func:`serialize_datastore`."""
    datastore.default_value_size = int(data["default_value_size"])
    retention = data.get("retention")
    datastore.retention = float(retention) if retention is not None else None
    datastore.total_writes = int(data["total_writes"])
    datastore.total_reads = int(data["total_reads"])
    datastore.pruned_writes = int(data.get("pruned_writes", 0))
    datastore._histories.clear()
    for key, state in data["histories"].items():
        datastore._histories[key] = KeyHistory(
            key=key,
            write_times=[float(t) for t in state["write_times"]],
            value_size=int(state["value_size"]),
            pruned=int(state.get("pruned", 0)),
        )


def canonical_datastore_bytes(datastore: DataStore) -> bytes:
    """Canonical byte encoding of a datastore's full state.

    Two datastores are byte-identical — same versions, write times, and
    counters — iff their canonical encodings are equal; the crash-recovery
    tests pin exactly this.
    """
    return json.dumps(serialize_datastore(datastore), sort_keys=True).encode("utf-8")


# --------------------------------------------------------------------- #
# Node serialization (duck-typed: works on any CacheNode-shaped object)
# --------------------------------------------------------------------- #
_ENTRY_FIELDS = (
    "key",
    "version",
    "as_of",
    "fetched_at",
    "key_size",
    "value_size",
    "last_poll_accounted",
    "hits",
)


def serialize_entry(entry: CacheEntry) -> Dict[str, Any]:
    """Flatten one cache entry."""
    data = {name: getattr(entry, name) for name in _ENTRY_FIELDS}
    data["state"] = entry.state.value
    return data


def entry_from_dict(data: Dict[str, Any]) -> CacheEntry:
    """Rebuild a cache entry from :func:`serialize_entry`."""
    fields = {name: data[name] for name in _ENTRY_FIELDS}
    return CacheEntry(state=EntryState(data["state"]), **fields)


def _serialize_result(result: Any) -> Dict[str, Any]:
    """Flatten a (Node)Result dataclass's raw counters."""
    state: Dict[str, Any] = {}
    for spec in dataclasses.fields(result):
        value = getattr(result, spec.name)
        if isinstance(value, (int, float, str)):
            state[spec.name] = value
        elif isinstance(value, dict):
            state[spec.name] = dict(value)
    return state


def _restore_result(result: Any, data: Dict[str, Any]) -> None:
    for name, value in data.items():
        if hasattr(result, name):
            setattr(result, name, value)


def _serialize_channel(channel: Any) -> Dict[str, Any]:
    """Flatten a channel, including its RNG state when it actually draws."""
    state: Dict[str, Any] = {
        "loss_probability": channel.loss_probability,
        "delay": channel.delay,
        "jitter": channel.jitter,
        "outage": channel.outage,
        "sent": channel.sent,
        "dropped": channel.dropped,
        "delivered": channel.delivered,
    }
    if not channel.is_ideal:
        state["rng"] = channel._rng.bit_generator.state
    return state


def _restore_channel(channel: Any, data: Dict[str, Any]) -> None:
    channel.loss_probability = float(data["loss_probability"])
    channel.delay = float(data["delay"])
    channel.jitter = float(data["jitter"])
    channel.outage = bool(data["outage"])
    channel.sent = int(data["sent"])
    channel.dropped = int(data["dropped"])
    channel.delivered = int(data["delivered"])
    if "rng" in data:
        channel._rng.bit_generator.state = data["rng"]


_MESSAGE_CLASSES = {"invalidate": InvalidateMessage, "update": UpdateMessage}


def serialize_node_stub(node: Any) -> Dict[str, Any]:
    """Flatten a failed/departed node: counters and flags, no volatile state.

    A node that is unreachable or off the ring has no durable claim to its
    in-memory state (its local disk stopped at its last completed snapshot),
    but its result counters and control-plane flags belong to the run and
    must survive a crash-resume.
    """
    return {
        "node_id": node.node_id,
        "partial": True,
        "reachable": node.reachable,
        "in_ring": node.in_ring,
        "result": _serialize_result(node.result),
        "cache_stats": _serialize_result(node.cache.stats),
        "channel": _serialize_channel(node.channel),
    }


def serialize_l1(l1: Any) -> Dict[str, Any]:
    """Flatten a node's L1 tier: entries, dirty set, stats, admission state.

    The admission sketch rides along so a crash-resume replays admission
    decisions exactly — unlike hot-key detectors, whose state is not
    checkpointed and which therefore refuse to resume.  Entries are written
    in LRU recency order (victim first): the L1 is always capacity-bounded,
    so restoring them in that order reproduces the eviction state — and
    hence every post-resume eviction decision — exactly.
    """
    entries = {entry.key: entry for entry in l1.cache.entries()}
    recency = l1.cache.eviction.recency_order()
    ordered = (
        [entries[key] for key in recency if key in entries]
        if recency is not None
        else list(entries.values())
    )
    return {
        "entries": [serialize_entry(entry) for entry in ordered],
        "dirty": sorted(l1.dirty),
        "outage": l1.outage,
        "stats": _serialize_result(l1.cache.stats),
        "admission": l1.admission.state(),
    }


def restore_l1(l1: Any, data: Dict[str, Any], time: float) -> None:
    """Rebuild a node's L1 tier in place from :func:`serialize_l1`."""
    l1.cache.clear()
    for entry_data in data["entries"]:
        l1.cache.restore_entry(entry_from_dict(entry_data), time)
    l1.dirty = set(data["dirty"])
    l1.outage = bool(data.get("outage", False))
    _restore_result(l1.cache.stats, data["stats"])
    l1.admission.load_state(data["admission"])


def serialize_node(node: Any) -> Dict[str, Any]:
    """Flatten one cache node's volatile state for a snapshot."""
    data = {
        "node_id": node.node_id,
        "reachable": node.reachable,
        "in_ring": node.in_ring,
        "entries": [serialize_entry(entry) for entry in node.cache.entries()],
        "cache_stats": _serialize_result(node.cache.stats),
        "buffer": [
            {
                "key": item.key,
                "first": item.first_write_time,
                "last": item.last_write_time,
                "count": item.write_count,
                "key_size": item.key_size,
                "value_size": item.value_size,
            }
            for item in node.buffer.peek()
        ],
        "buffer_total": node.buffer.total_buffered,
        "tracker": {
            "keys": [[key, time] for key, time in node.tracker._invalidated.items()],
            "forgotten": node.tracker.forgotten,
        },
        "pending": [
            {
                "kind": pending.message.kind.value,
                "key": pending.message.key,
                "sent_at": pending.message.sent_at,
                "key_size": pending.message.key_size,
                "value_size": pending.message.value_size,
                "version": pending.message.version,
                "deliver_at": pending.deliver_at,
            }
            for pending in node._pending
        ],
        "result": _serialize_result(node.result),
        "channel": _serialize_channel(node.channel),
    }
    if getattr(node, "l1", None) is not None:
        data["l1"] = serialize_l1(node.l1)
    return data


def restore_node(node: Any, data: Dict[str, Any], time: float) -> None:
    """Rebuild a node's volatile state in place (crash-resume path).

    Cache entries are re-inserted in their serialized order, which restores
    the cache contents exactly; eviction *recency* is approximated by that
    order, so resume is exact for unbounded caches and insertion-order
    eviction (FIFO), and a close approximation under LRU/LFU/Clock.

    A stub record (``partial``, from :func:`serialize_node_stub`) restores
    only counters and flags: the node's volatile state died with the crash,
    exactly as it had already died with the node's own failure.
    """
    node.reachable = bool(data["reachable"])
    node.in_ring = bool(data["in_ring"])
    if data.get("partial"):
        _restore_result(node.result, data["result"])
        _restore_result(node.cache.stats, data["cache_stats"])
        _restore_channel(node.channel, data["channel"])
        return
    node.cache.clear()
    for entry_data in data["entries"]:
        node.cache.restore_entry(entry_from_dict(entry_data), time)
    _restore_result(node.cache.stats, data["cache_stats"])
    node.buffer.drain()
    for item in data["buffer"]:
        node.buffer._pending[item["key"]] = BufferedWrite(
            key=item["key"],
            first_write_time=item["first"],
            last_write_time=item["last"],
            write_count=item["count"],
            key_size=item["key_size"],
            value_size=item["value_size"],
        )
    node.buffer.total_buffered = int(data["buffer_total"])
    node.tracker.clear()
    for key, marked_at in data["tracker"]["keys"]:
        node.tracker._invalidated[key] = marked_at
    node.tracker.forgotten = int(data["tracker"]["forgotten"])
    node._pending.clear()
    for item in data["pending"]:
        message_cls = _MESSAGE_CLASSES[item["kind"]]
        message = message_cls(
            key=item["key"],
            sent_at=item["sent_at"],
            key_size=item["key_size"],
            value_size=item["value_size"],
            version=item["version"],
        )
        node._pending.append(PendingDelivery(message=message, deliver_at=item["deliver_at"]))
    if node._pending and node._pending_registry is not None:
        node._pending_registry.add(node.node_id)
    if getattr(node, "l1", None) is not None and "l1" in data:
        restore_l1(node.l1, data["l1"], time)
    _restore_result(node.result, data["result"])
    _restore_channel(node.channel, data["channel"])


# --------------------------------------------------------------------- #
# Snapshot files
# --------------------------------------------------------------------- #
def snapshot_path(root: str | Path, seq: int) -> Path:
    """File path of snapshot ``seq`` under ``root``."""
    return Path(root) / f"snapshot-{seq:08d}.json"


def list_snapshots(root: str | Path) -> List[Path]:
    """Snapshot files under ``root``, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(path for path in root.iterdir() if _SNAPSHOT_RE.match(path.name))


def load_snapshot(path: str | Path) -> Snapshot:
    """Load one snapshot file.

    Raises:
        StoreError: If the file is not a repro snapshot.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreError(f"cannot read snapshot {path}: {exc}") from exc
    if data.get("kind") != "repro-snapshot":
        raise StoreError(f"{path} is not a repro snapshot")
    return Snapshot(
        seq=int(data["seq"]),
        time=float(data["time"]),
        wal_lsn=int(data["wal_lsn"]),
        datastore=data["datastore"],
        nodes=data.get("nodes", {}),
        extra=data.get("extra", {}),
        journal=data.get("journal", {}),
    )


def latest_snapshot(root: str | Path) -> Optional[Snapshot]:
    """Load the newest snapshot under ``root`` (``None`` when there is none)."""
    paths = list_snapshots(root)
    return load_snapshot(paths[-1]) if paths else None


class SnapshotManager:
    """Numbers, writes, and lists snapshots under one store root."""

    def __init__(self, config: StoreConfig) -> None:
        self.config = config
        Path(config.root).mkdir(parents=True, exist_ok=True)
        existing = list_snapshots(config.root)
        self._seq = (
            int(_SNAPSHOT_RE.match(existing[-1].name).group(1)) if existing else 0
        )
        self.snapshots_taken = 0

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent snapshot."""
        return self._seq

    def take(
        self,
        time: float,
        wal_lsn: int,
        datastore: Dict[str, Any],
        nodes: Dict[str, Any],
        extra: Dict[str, Any],
        journal: Dict[str, Any],
    ) -> Path:
        """Write the next snapshot atomically and return its path."""
        self._seq += 1
        snapshot = Snapshot(
            seq=self._seq,
            time=time,
            wal_lsn=wal_lsn,
            datastore=datastore,
            nodes=nodes,
            extra=extra,
            journal=journal,
        )
        path = snapshot_path(self.config.root, self._seq)
        tmp_path = path.with_suffix(".tmp")
        tmp_path.write_text(json.dumps(snapshot.as_dict(), sort_keys=True))
        os.replace(tmp_path, path)
        self.snapshots_taken += 1
        return path
