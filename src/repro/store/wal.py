"""The append-only write-ahead log and the datastore journal built on it.

:class:`WriteAheadLog` is the durability primitive: records are appended to
an in-memory batch and made durable in groups of ``flush_every`` (an
fsync-style group commit).  Every append and every flush is charged to the
:class:`~repro.core.cost_model.CostModel`, so persistence shows up in the
same cost units as freshness messages — the overhead a deployment would
actually pay for crash safety.

:class:`Journal` is the thin adapter the simulators attach to a
:class:`~repro.backend.datastore.DataStore`: it logs every backend write as
its own record, aggregates read counts into delta records (reads mutate only
a counter, so logging each one individually would dominate the log), and
records every freshness message sent, giving ``store inspect`` a full audit
trail of the backend's externally visible behaviour.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.core.cost_model import CostModel
from repro.errors import StoreError
from repro.store.format import (
    KIND_MESSAGE,
    KIND_READS,
    KIND_WRITE,
    MAGIC,
    WalScan,
    encode_record,
    scan_wal,
)


@dataclass(slots=True)
class WalStats:
    """Counters describing one WAL's lifetime activity.

    ``bytes_written`` counts appended record bytes (a monotone total that
    compaction does not roll back), so it doubles as the log-growth metric.
    """

    appends: int = 0
    flushes: int = 0
    bytes_written: int = 0
    compactions: int = 0
    records_dropped: int = 0
    persistence_cost: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Flatten for snapshots and result rows."""
        return asdict(self)

    def load(self, data: Dict[str, Any]) -> None:
        """Restore the counters from a snapshot (crash-resume path)."""
        for name, value in data.items():
            if hasattr(self, name):
                setattr(self, name, value)


class WriteAheadLog:
    """Append-only, checksummed record log with batched group commit.

    Args:
        path: Log file location.  An existing file is opened for append and
            scanned once so LSNs continue where the previous process stopped.
        flush_every: Records per group commit; ``1`` makes every append
            durable immediately.
        costs: Cost model charged per append and per flush (``None`` skips
            cost accounting).
        fsync: Whether to actually ``os.fsync`` on flush.  Defaults off — the
            simulator models durability cost through the cost model, and the
            OS-level sync only matters when the host itself may lose power.
    """

    def __init__(
        self,
        path: str | Path,
        flush_every: int = 64,
        costs: Optional[CostModel] = None,
        fsync: bool = False,
    ) -> None:
        if flush_every < 1:
            raise StoreError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self.costs = costs
        self.fsync = fsync
        self.stats = WalStats()
        self._batch: List[bytes] = []
        self._batch_bytes = 0
        self._last_lsn = 0
        self._records_in_file = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists() and self.path.stat().st_size > 0:
            scan = WalScan()
            for _ in scan_wal(self.path, scan):
                pass
            self._last_lsn = scan.last_lsn
            self._records_in_file = scan.records
            if scan.torn_bytes:
                # Truncate the torn tail so new appends form a valid log.
                # ``bytes_read`` is the absolute offset just past the last
                # record whose checksum verified (0 when none did).
                with self.path.open("r+b") as handle:
                    handle.truncate(scan.bytes_read if scan.records else len(MAGIC))
        else:
            self.path.write_bytes(MAGIC)
        self._handle = self.path.open("ab")

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended record."""
        return self._last_lsn

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, kind: str, fields: Dict[str, Any]) -> int:
        """Append one record and return its LSN (durable after the next flush)."""
        self._last_lsn += 1
        payload = dict(fields)
        payload["lsn"] = self._last_lsn
        payload["k"] = kind
        record = encode_record(payload)
        self._batch.append(record)
        self._batch_bytes += len(record)
        self.stats.appends += 1
        if self.costs is not None:
            self.stats.persistence_cost += self.costs.wal_append_cost(len(record))
        if len(self._batch) >= self.flush_every:
            self.flush()
        return self._last_lsn

    def flush(self) -> None:
        """Group-commit the batched records (no-op when nothing is pending)."""
        if not self._batch:
            return
        self._handle.write(b"".join(self._batch))
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.stats.flushes += 1
        self.stats.bytes_written += self._batch_bytes
        self._records_in_file += len(self._batch)
        if self.costs is not None:
            self.stats.persistence_cost += self.costs.wal_flush_cost()
        self._batch.clear()
        self._batch_bytes = 0

    # ------------------------------------------------------------------ #
    # Reading and compaction
    # ------------------------------------------------------------------ #
    def replay(self, after_lsn: int = 0, scan: Optional[WalScan] = None) -> Iterator[Dict[str, Any]]:
        """Yield durable records with ``lsn > after_lsn`` in log order.

        Only flushed records are visible — replay reads the file, not the
        in-memory batch, matching what a crashed process would recover.
        """
        for record in scan_wal(self.path, scan):
            if int(record.get("lsn", 0)) > after_lsn:
                yield record

    def compact(self, keep_after_lsn: int) -> int:
        """Drop records with ``lsn <= keep_after_lsn`` (the snapshot watermark).

        The log is rewritten to a sibling file and atomically swapped in, so
        a crash mid-compaction leaves either the old or the new log intact.

        Returns:
            The number of records dropped.
        """
        self.flush()
        self._handle.close()
        if keep_after_lsn >= self._last_lsn:
            # The common checkpoint case drops the whole log: truncate to the
            # header instead of decoding and re-encoding every record.
            dropped = self._records_in_file
            self.path.write_bytes(MAGIC)
            self._records_in_file = 0
        else:
            tmp_path = self.path.with_suffix(self.path.suffix + ".compact")
            kept = 0
            with tmp_path.open("wb") as tmp:
                tmp.write(MAGIC)
                for record in scan_wal(self.path):
                    if int(record.get("lsn", 0)) <= keep_after_lsn:
                        continue
                    tmp.write(encode_record(record))
                    kept += 1
            os.replace(tmp_path, self.path)
            dropped = self._records_in_file - kept
            self._records_in_file = kept
        self._handle = self.path.open("ab")
        self.stats.compactions += 1
        self.stats.records_dropped += dropped
        return dropped

    def close(self) -> None:
        """Flush any pending batch and close the file handle."""
        self.flush()
        self._handle.close()


class Journal:
    """Datastore-side hook feeding backend activity into a WAL.

    The journal is attached via
    :meth:`~repro.backend.datastore.DataStore.attach_journal`; from then on
    every committed write becomes a WAL record.  Reads are aggregated: the
    journal keeps a pending read count and emits a single delta record just
    before the next write record (or at :meth:`sync`), keeping the recovered
    ``total_reads`` counter exact at every durable point.
    """

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal
        self._reads_pending = 0
        self.writes_logged = 0
        self.reads_logged = 0
        self.messages_logged = 0

    # ------------------------------------------------------------------ #
    # Hooks called by the datastore and the simulators
    # ------------------------------------------------------------------ #
    def log_write(self, key: str, time: float, value_size: int) -> None:
        """Record one committed backend write."""
        self._drain_reads()
        self.wal.append(KIND_WRITE, {"key": key, "t": time, "vs": value_size})
        self.writes_logged += 1

    def note_read(self) -> None:
        """Count one backend read (aggregated into the next delta record)."""
        self._reads_pending += 1

    def log_message(self, kind: str, key: str, time: float, version: int) -> None:
        """Record one freshness message (invalidate/update) sent by the backend."""
        self._drain_reads()
        self.wal.append(KIND_MESSAGE, {"mk": kind, "key": key, "t": time, "v": version})
        self.messages_logged += 1

    def _drain_reads(self) -> None:
        if self._reads_pending:
            self.wal.append(KIND_READS, {"n": self._reads_pending})
            self.reads_logged += self._reads_pending
            self._reads_pending = 0

    def sync(self) -> None:
        """Make everything logged so far durable (checkpoint barrier)."""
        self._drain_reads()
        self.wal.flush()

    # ------------------------------------------------------------------ #
    # Snapshot round-trip
    # ------------------------------------------------------------------ #
    def state(self) -> Dict[str, Any]:
        """Counters persisted in snapshots so a resumed run keeps counting."""
        return {
            "writes_logged": self.writes_logged,
            "reads_logged": self.reads_logged,
            "messages_logged": self.messages_logged,
            "wal": self.wal.stats.as_dict(),
        }

    def load_state(self, data: Dict[str, Any]) -> None:
        """Restore the counters from a snapshot (crash-resume path)."""
        self.writes_logged = int(data.get("writes_logged", 0))
        self.reads_logged = int(data.get("reads_logged", 0))
        self.messages_logged = int(data.get("messages_logged", 0))
        self.wal.stats.load(data.get("wal", {}))
