"""Durable persistence for the simulated backend: WAL, snapshots, recovery.

The package follows the classic database recovery architecture (ZODB's
append-only transaction log was the direct inspiration):

* :mod:`repro.store.format` — length-prefixed, CRC-checksummed record framing
  with torn-tail tolerance,
* :mod:`repro.store.wal` — the append-only :class:`WriteAheadLog` with
  batched group commit charged to the cost model, and the :class:`Journal`
  that hooks a :class:`~repro.backend.datastore.DataStore`,
* :mod:`repro.store.snapshot` — full-state checkpoints (datastore histories
  plus per-node cache/buffer/tracker state) and WAL compaction at the
  snapshot watermark,
* :mod:`repro.store.recovery` — snapshot restore + WAL tail replay, and the
  warm-rejoin state a returning cache node restores, and
* :mod:`repro.store.runtime` — the :class:`StoreRuntime` a simulator embeds
  when constructed with a :class:`StoreConfig`.

Typical use::

    from repro import ClusterSimulation, StoreConfig, recover_datastore

    cluster = ClusterSimulation(..., store=StoreConfig("run-store",
                                                       snapshot_interval=2.0))
    partial = cluster.run(stop_at=6.0)          # "kill" the run mid-way

    datastore, report = recover_datastore("run-store")   # byte-identical
"""

from repro.store.format import WalScan, encode_record, scan_wal
from repro.store.recovery import (
    RecoveryReport,
    WarmState,
    load_checkpoint,
    recover_datastore,
    replay_wal,
    warm_state,
)
from repro.store.runtime import StoreRuntime
from repro.store.snapshot import (
    Snapshot,
    SnapshotManager,
    StoreConfig,
    canonical_datastore_bytes,
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    serialize_datastore,
)
from repro.store.wal import Journal, WalStats, WriteAheadLog

__all__ = [
    "Journal",
    "RecoveryReport",
    "Snapshot",
    "SnapshotManager",
    "StoreConfig",
    "StoreRuntime",
    "WalScan",
    "WalStats",
    "WarmState",
    "WriteAheadLog",
    "canonical_datastore_bytes",
    "encode_record",
    "latest_snapshot",
    "list_snapshots",
    "load_checkpoint",
    "load_snapshot",
    "recover_datastore",
    "replay_wal",
    "scan_wal",
    "serialize_datastore",
    "warm_state",
]
