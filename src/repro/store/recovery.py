"""Crash recovery: snapshot restore plus WAL tail replay.

Recovery follows the classic two-step: load the newest snapshot (full
versioned histories as of its watermark), then replay every durable WAL
record with a higher LSN — write records re-commit, read-delta records
restore the read counter, message records are counted for the audit trail.
The result is a :class:`~repro.backend.datastore.DataStore` byte-identical to
the pre-crash store at its last durable point.

Warm node rejoin uses the same machinery from a different angle: the
rejoining node restores its cache from the last snapshot taken while it was
alive, then uses the recovered write history to keep only the entries no
write has touched since — the keys that would have received an invalidate had
the node been up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.backend.datastore import DataStore
from repro.cache.entry import CacheEntry, EntryState
from repro.errors import StoreError
from repro.store.format import KIND_MESSAGE, KIND_READS, KIND_WRITE, WalScan, scan_wal
from repro.store.snapshot import (
    Snapshot,
    StoreConfig,
    entry_from_dict,
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    restore_datastore,
)


@dataclass(slots=True)
class RecoveryReport:
    """What a recovery pass found and rebuilt."""

    snapshot_seq: int = 0
    snapshot_time: float = 0.0
    snapshot_lsn: int = 0
    wal_records: int = 0
    writes_replayed: int = 0
    reads_replayed: int = 0
    messages_replayed: int = 0
    torn_bytes: int = 0
    recovered_keys: int = 0
    recovered_versions: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """Flatten for CLI output and logs."""
        return {
            "snapshot_seq": self.snapshot_seq,
            "snapshot_time": self.snapshot_time,
            "snapshot_lsn": self.snapshot_lsn,
            "wal_records": self.wal_records,
            "writes_replayed": self.writes_replayed,
            "reads_replayed": self.reads_replayed,
            "messages_replayed": self.messages_replayed,
            "torn_bytes": self.torn_bytes,
            "recovered_keys": self.recovered_keys,
            "recovered_versions": self.recovered_versions,
        }


def replay_wal(
    datastore: DataStore, wal_path: str | Path, after_lsn: int = 0
) -> RecoveryReport:
    """Apply the durable WAL tail after ``after_lsn`` to ``datastore``."""
    report = RecoveryReport(snapshot_lsn=after_lsn)
    # Replay must not re-journal: suspend any attached journal for the pass.
    journal = datastore.journal
    datastore.journal = None
    scan = WalScan()
    try:
        for record in scan_wal(wal_path, scan):
            if int(record.get("lsn", 0)) <= after_lsn:
                continue
            report.wal_records += 1
            kind = record.get("k")
            if kind == KIND_WRITE:
                datastore.write(record["key"], record["t"], record["vs"])
                report.writes_replayed += 1
            elif kind == KIND_READS:
                datastore.total_reads += int(record["n"])
                report.reads_replayed += int(record["n"])
            elif kind == KIND_MESSAGE:
                report.messages_replayed += 1
    finally:
        datastore.journal = journal
    report.torn_bytes = scan.torn_bytes
    return report


def recover_datastore(
    root: str | Path, retention: Optional[float] = None
) -> Tuple[DataStore, RecoveryReport]:
    """Rebuild a datastore from the snapshots and WAL under ``root``.

    The retention window is restored from the snapshot (so WAL-tail replay
    prunes exactly like the original run did, keeping the rebuild
    byte-for-byte); pass ``retention`` only to override it.

    Returns:
        The recovered store and a report.  An empty store directory recovers
        to an empty datastore (zero snapshots, zero records) rather than
        erroring: that is what a crash before the first flush leaves behind.
    """
    root = Path(root)
    datastore = DataStore()
    snapshot = latest_snapshot(root)
    after_lsn = 0
    if snapshot is not None:
        restore_datastore(datastore, snapshot.datastore)
        after_lsn = snapshot.wal_lsn
    if retention is not None:
        datastore.retention = float(retention)
    report = replay_wal(datastore, StoreConfig(root=str(root)).wal_path, after_lsn)
    if snapshot is not None:
        report.snapshot_seq = snapshot.seq
        report.snapshot_time = snapshot.time
    report.recovered_keys = len(datastore.known_keys())
    report.recovered_versions = datastore.total_writes
    return datastore, report


def load_checkpoint(root: str | Path) -> Snapshot:
    """Load the newest snapshot, erroring when there is none (resume path)."""
    snapshot = latest_snapshot(Path(root))
    if snapshot is None:
        raise StoreError(f"no snapshot under {root}; nothing to resume from")
    return snapshot


# --------------------------------------------------------------------- #
# Warm node rejoin
# --------------------------------------------------------------------- #
def latest_node_snapshot(
    root: str | Path, node_id: str
) -> Optional[Tuple[Snapshot, Dict[str, Any]]]:
    """Find the newest snapshot that still contains ``node_id``'s full state.

    Snapshots hold full state only for nodes that were alive when they were
    taken (failed/departed nodes appear as counter stubs), so for a failed
    node this is the last checkpoint its local disk completed before the
    crash.
    """
    for path in reversed(list_snapshots(root)):
        snapshot = load_snapshot(path)
        node_data = snapshot.nodes.get(node_id)
        if node_data is not None and not node_data.get("partial"):
            return snapshot, node_data
    return None


@dataclass(slots=True)
class WarmState:
    """Cache contents a rejoining node restores from durable state."""

    snapshot_seq: int = 0
    snapshot_time: float = 0.0
    #: Entries restored valid (no write has touched the key since).
    entries: List[CacheEntry] = field(default_factory=list)
    #: Keys written since the snapshot: restored as invalidated placeholders.
    invalidated: int = 0
    #: L1 entries recovered from the snapshot (empty for single-tier nodes),
    #: validated against the write history exactly like the L2 entries.
    l1_entries: List[CacheEntry] = field(default_factory=list)
    l1_invalidated: int = 0
    #: Keys among ``l1_entries`` that were write-back dirty at the snapshot:
    #: the L2 never saw them, so they stay dirty after the restore.
    l1_dirty: List[str] = field(default_factory=list)

    @property
    def restored(self) -> int:
        """Total entries put back into the cache (both tiers)."""
        return len(self.entries) + len(self.l1_entries)


def warm_state(
    root: str | Path,
    node_id: str,
    rejoin_time: float,
    replayed: Optional[DataStore] = None,
) -> Optional[WarmState]:
    """Rebuild a node's cache contents for a warm rejoin at ``rejoin_time``.

    The node's entries come from its last completed snapshot; the backend's
    recovered write history (snapshot + WAL tail) decides validity.  Entries
    whose key was written after the entry's ``as_of`` are restored in the
    invalidated state: the node missed those invalidates while it was down,
    so serving them would be exactly the stale-serve spike warm rejoin exists
    to avoid.  Returns ``None`` when no snapshot ever captured the node.

    Pass ``replayed`` (a store already rebuilt by :func:`recover_datastore`)
    when restoring several nodes at the same instant — a whole-fleet restart
    shares one recovery pass instead of re-reading the store per node.
    """
    found = latest_node_snapshot(root, node_id)
    if found is None:
        return None
    snapshot, node_data = found
    if replayed is None:
        replayed, _ = recover_datastore(root)
    state = WarmState(snapshot_seq=snapshot.seq, snapshot_time=snapshot.time)

    def validate(entry_data: Dict[str, Any]) -> Tuple[CacheEntry, bool]:
        entry = entry_from_dict(entry_data)
        if replayed.writes_between(entry.key, entry.as_of, rejoin_time) > 0:
            entry.state = EntryState.INVALIDATED
            return entry, True
        entry.state = EntryState.VALID
        return entry, False

    for entry_data in node_data["entries"]:
        entry, stale = validate(entry_data)
        state.invalidated += stale
        state.entries.append(entry)
    l1_data = node_data.get("l1", {})
    for entry_data in l1_data.get("entries", []):
        entry, stale = validate(entry_data)
        state.l1_invalidated += stale
        state.l1_entries.append(entry)
    restored_keys = {entry.key for entry in state.l1_entries}
    state.l1_dirty = [key for key in l1_data.get("dirty", []) if key in restored_keys]
    return state
