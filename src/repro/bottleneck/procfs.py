"""Access to ``/proc``-style counter files.

The probes in :mod:`repro.bottleneck.probes` parse the three files the paper's
prototype reads (``/proc/stat``, ``/proc/net/dev``, ``/proc/diskstats``).  To
keep them testable — and usable on systems without a Linux ``/proc`` — file
access goes through the small :class:`ProcFS` interface with two
implementations: the real filesystem and an in-memory synthetic one whose
counters the caller advances explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict

from repro.errors import BottleneckError


class ProcFS(ABC):
    """Minimal read-only view of ``/proc``."""

    @abstractmethod
    def read(self, path: str) -> str:
        """Return the contents of ``path`` (e.g. ``/proc/stat``).

        Raises:
            BottleneckError: If the file cannot be read.
        """


class SystemProcFS(ProcFS):
    """Reads the real ``/proc`` filesystem."""

    def read(self, path: str) -> str:
        try:
            return Path(path).read_text()
        except OSError as exc:
            raise BottleneckError(f"cannot read {path}: {exc}") from exc


class SyntheticProcFS(ProcFS):
    """An in-memory ``/proc`` with counters the test or simulation controls.

    Counters are set through :meth:`set_cpu`, :meth:`set_network`, and
    :meth:`set_disk`; the rendered file contents follow the real kernel
    formats closely enough for the probes' parsers.
    """

    def __init__(self) -> None:
        self._cpu_jiffies: Dict[str, int] = {
            "user": 0,
            "nice": 0,
            "system": 0,
            "idle": 0,
            "iowait": 0,
            "irq": 0,
            "softirq": 0,
        }
        self._interfaces: Dict[str, tuple[int, int]] = {"eth0": (0, 0)}
        self._disks: Dict[str, tuple[int, int]] = {"sda": (0, 0)}

    # ------------------------------------------------------------------ #
    # Counter control
    # ------------------------------------------------------------------ #
    def set_cpu(self, busy_jiffies: int, idle_jiffies: int, iowait_jiffies: int = 0) -> None:
        """Set cumulative CPU jiffies (busy split evenly across busy fields)."""
        per_field = busy_jiffies // 3
        self._cpu_jiffies.update(
            {
                "user": per_field,
                "nice": 0,
                "system": per_field,
                "idle": idle_jiffies,
                "iowait": iowait_jiffies,
                "irq": 0,
                "softirq": busy_jiffies - 2 * per_field,
            }
        )

    def set_network(self, interface: str, rx_bytes: int, tx_bytes: int) -> None:
        """Set cumulative received/transmitted bytes for an interface."""
        self._interfaces[interface] = (rx_bytes, tx_bytes)

    def set_disk(self, device: str, sectors_read: int, sectors_written: int) -> None:
        """Set cumulative sectors read/written for a block device."""
        self._disks[device] = (sectors_read, sectors_written)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def _render_stat(self) -> str:
        jiffies = self._cpu_jiffies
        fields = " ".join(
            str(jiffies[name])
            for name in ("user", "nice", "system", "idle", "iowait", "irq", "softirq")
        )
        return f"cpu  {fields} 0 0 0\n"

    def _render_net_dev(self) -> str:
        header = (
            "Inter-|   Receive                                                |  Transmit\n"
            " face |bytes    packets errs drop fifo frame compressed multicast|bytes"
            "    packets errs drop fifo colls carrier compressed\n"
        )
        lines = []
        for name, (rx_bytes, tx_bytes) in self._interfaces.items():
            lines.append(
                f"{name}: {rx_bytes} 0 0 0 0 0 0 0 {tx_bytes} 0 0 0 0 0 0 0\n"
            )
        return header + "".join(lines)

    def _render_diskstats(self) -> str:
        lines = []
        for index, (device, (sectors_read, sectors_written)) in enumerate(self._disks.items()):
            lines.append(
                f"   8      {index} {device} 0 0 {sectors_read} 0 0 0 {sectors_written} 0 0 0 0\n"
            )
        return "".join(lines)

    def read(self, path: str) -> str:
        if path.endswith("stat") and "disk" not in path:
            return self._render_stat()
        if path.endswith("net/dev"):
            return self._render_net_dev()
        if path.endswith("diskstats"):
            return self._render_diskstats()
        raise BottleneckError(f"synthetic procfs has no file {path}")
