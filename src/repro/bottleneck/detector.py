"""Classifying which resource is the bottleneck (§3.3 of the paper).

The optimal cost assignment for ``c_m``, ``c_i``, ``c_u`` depends on what the
deployment is short of: CPU cycles for (de)serialisation, network bytes, or
disk bandwidth.  The detector looks at a utilisation snapshot and picks the
most loaded resource, subject to a minimum threshold below which the system is
considered unconstrained (in which case the user's offline-profiled label, if
any, wins).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.bottleneck.probes import UtilizationSnapshot
from repro.errors import ConfigurationError


class Bottleneck(Enum):
    """The resource constraining the deployment."""

    CPU = "cpu"
    NETWORK = "network"
    DISK = "disk"
    NONE = "none"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(slots=True)
class BottleneckDetector:
    """Picks the bottleneck from utilisation, with an optional manual override.

    Args:
        threshold: Minimum utilisation for a resource to count as a
            bottleneck at all.
        manual_label: A bottleneck label from offline profiling; used whenever
            automatic detection finds nothing above the threshold (the paper
            notes operators often know their bottleneck ahead of deployment).
    """

    threshold: float = 0.7
    manual_label: Optional[Bottleneck] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError(f"threshold must be in [0, 1], got {self.threshold}")

    def detect(self, snapshot: UtilizationSnapshot) -> Bottleneck:
        """Return the bottleneck implied by a utilisation snapshot."""
        candidates = {
            Bottleneck.CPU: snapshot.cpu,
            Bottleneck.NETWORK: snapshot.network,
            Bottleneck.DISK: snapshot.disk,
        }
        bottleneck, utilization = max(candidates.items(), key=lambda item: item[1])
        if utilization >= self.threshold:
            return bottleneck
        if self.manual_label is not None:
            return self.manual_label
        return Bottleneck.NONE
