"""Resource probes reading CPU, network, and disk counters from ``/proc``.

Each probe parses one of the files the paper's prototype monitors and converts
two consecutive samples into a utilisation ratio:

* ``/proc/stat``       -> CPU busy fraction,
* ``/proc/net/dev``    -> network throughput as a fraction of link capacity,
* ``/proc/diskstats``  -> disk throughput as a fraction of device capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bottleneck.procfs import ProcFS, SystemProcFS
from repro.errors import BottleneckError


@dataclass(frozen=True, slots=True)
class CpuSample:
    """Cumulative CPU jiffies split into busy, idle, and iowait."""

    busy: int
    idle: int
    iowait: int

    @property
    def total(self) -> int:
        return self.busy + self.idle + self.iowait


@dataclass(frozen=True, slots=True)
class NetworkSample:
    """Cumulative bytes received and transmitted across all interfaces."""

    rx_bytes: int
    tx_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.rx_bytes + self.tx_bytes


@dataclass(frozen=True, slots=True)
class DiskSample:
    """Cumulative sectors read and written across all block devices."""

    sectors_read: int
    sectors_written: int

    SECTOR_BYTES = 512

    @property
    def total_bytes(self) -> int:
        return (self.sectors_read + self.sectors_written) * self.SECTOR_BYTES


@dataclass(frozen=True, slots=True)
class UtilizationSnapshot:
    """Utilisation of each resource over one sampling interval, in [0, 1]."""

    cpu: float
    network: float
    disk: float

    def as_dict(self) -> dict[str, float]:
        return {"cpu": self.cpu, "network": self.network, "disk": self.disk}


class ResourceProbe:
    """Parses ``/proc`` counters and derives utilisation between samples.

    Args:
        procfs: File access layer (real or synthetic).
        network_capacity_bytes_per_sec: Link capacity used to normalise
            network throughput (default 10 Gbit/s).
        disk_capacity_bytes_per_sec: Device capacity used to normalise disk
            throughput (default 500 MB/s).
        stat_path / net_path / disk_path: Override file locations (tests).
    """

    def __init__(
        self,
        procfs: Optional[ProcFS] = None,
        network_capacity_bytes_per_sec: float = 1.25e9,
        disk_capacity_bytes_per_sec: float = 5e8,
        stat_path: str = "/proc/stat",
        net_path: str = "/proc/net/dev",
        disk_path: str = "/proc/diskstats",
    ) -> None:
        self.procfs = procfs if procfs is not None else SystemProcFS()
        self.network_capacity = float(network_capacity_bytes_per_sec)
        self.disk_capacity = float(disk_capacity_bytes_per_sec)
        self.stat_path = stat_path
        self.net_path = net_path
        self.disk_path = disk_path

    # ------------------------------------------------------------------ #
    # Raw samples
    # ------------------------------------------------------------------ #
    def sample_cpu(self) -> CpuSample:
        """Parse the aggregate ``cpu`` line of ``/proc/stat``."""
        for line in self.procfs.read(self.stat_path).splitlines():
            if line.startswith("cpu "):
                fields = line.split()
                values = [int(value) for value in fields[1:]]
                if len(values) < 5:
                    raise BottleneckError(f"malformed cpu line: {line!r}")
                user, nice, system, idle, iowait = values[:5]
                irq = values[5] if len(values) > 5 else 0
                softirq = values[6] if len(values) > 6 else 0
                return CpuSample(
                    busy=user + nice + system + irq + softirq, idle=idle, iowait=iowait
                )
        raise BottleneckError(f"no aggregate cpu line found in {self.stat_path}")

    def sample_network(self) -> NetworkSample:
        """Parse ``/proc/net/dev``, summing bytes across non-loopback interfaces."""
        rx_total = 0
        tx_total = 0
        for line in self.procfs.read(self.net_path).splitlines():
            if ":" not in line:
                continue
            name, counters = line.split(":", maxsplit=1)
            if name.strip() == "lo":
                continue
            fields = counters.split()
            if len(fields) < 9:
                raise BottleneckError(f"malformed net/dev line: {line!r}")
            rx_total += int(fields[0])
            tx_total += int(fields[8])
        return NetworkSample(rx_bytes=rx_total, tx_bytes=tx_total)

    def sample_disk(self) -> DiskSample:
        """Parse ``/proc/diskstats``, summing sectors across whole devices."""
        sectors_read = 0
        sectors_written = 0
        for line in self.procfs.read(self.disk_path).splitlines():
            fields = line.split()
            if len(fields) < 10:
                continue
            device = fields[2]
            # Skip partitions (e.g. sda1) to avoid double counting; whole
            # devices end in a letter for scsi-style names.
            if device[-1].isdigit() and not device.startswith(("nvme", "mmcblk")):
                continue
            sectors_read += int(fields[5])
            sectors_written += int(fields[9])
        return DiskSample(sectors_read=sectors_read, sectors_written=sectors_written)

    # ------------------------------------------------------------------ #
    # Utilisation between two samples
    # ------------------------------------------------------------------ #
    def utilization_between(
        self,
        cpu_before: CpuSample,
        cpu_after: CpuSample,
        net_before: NetworkSample,
        net_after: NetworkSample,
        disk_before: DiskSample,
        disk_after: DiskSample,
        elapsed_seconds: float,
    ) -> UtilizationSnapshot:
        """Convert two raw samples into per-resource utilisation ratios."""
        if elapsed_seconds <= 0:
            raise BottleneckError(f"elapsed_seconds must be positive, got {elapsed_seconds}")
        cpu_delta_total = cpu_after.total - cpu_before.total
        cpu_delta_busy = cpu_after.busy - cpu_before.busy
        cpu_utilization = cpu_delta_busy / cpu_delta_total if cpu_delta_total > 0 else 0.0

        net_bytes = net_after.total_bytes - net_before.total_bytes
        net_utilization = net_bytes / (self.network_capacity * elapsed_seconds)

        disk_bytes = disk_after.total_bytes - disk_before.total_bytes
        disk_utilization = disk_bytes / (self.disk_capacity * elapsed_seconds)

        clamp = lambda value: min(max(value, 0.0), 1.0)  # noqa: E731 - tiny local helper
        return UtilizationSnapshot(
            cpu=clamp(cpu_utilization),
            network=clamp(net_utilization),
            disk=clamp(disk_utilization),
        )
