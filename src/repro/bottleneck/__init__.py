"""Bottleneck detection and cost assignment (§3.3 of the paper).

The adaptive policy's cost parameters (``c_m``, ``c_i``, ``c_u``) should
reflect whatever resource is actually the bottleneck in the deployment: CPU at
the cache or the backend, network bandwidth, or disk I/O.  The paper's
prototype reads ``/proc/stat``, ``/proc/net/dev``, and ``/proc/diskstats`` to
detect the bottleneck online; this package implements those probes with a
synthetic ``/proc`` filesystem fallback so the detection path is fully
exercisable in tests and on non-Linux machines.
"""

from repro.bottleneck.procfs import ProcFS, SyntheticProcFS, SystemProcFS
from repro.bottleneck.probes import (
    CpuSample,
    DiskSample,
    NetworkSample,
    ResourceProbe,
    UtilizationSnapshot,
)
from repro.bottleneck.detector import Bottleneck, BottleneckDetector
from repro.bottleneck.costs import cost_model_for_bottleneck

__all__ = [
    "Bottleneck",
    "BottleneckDetector",
    "CpuSample",
    "DiskSample",
    "NetworkSample",
    "ProcFS",
    "ResourceProbe",
    "SyntheticProcFS",
    "SystemProcFS",
    "UtilizationSnapshot",
    "cost_model_for_bottleneck",
]
