"""Mapping a detected bottleneck to a cost model (§3.3, Table 1).

* **CPU bottleneck**: costs are dominated by serialisation/deserialisation and
  store operations, i.e. the Table 1 breakdown.
* **Network bottleneck**: costs are proportional to message bytes — an
  invalidate moves only the key, an update or miss moves the key and value.
* **Disk bottleneck**: like CPU but with a much more expensive backend read
  (the miss has to touch storage), which biases decisions toward updates.
* **No bottleneck / latency priority**: the paper's advice is to always send
  updates (``c_m`` treated as infinite); :func:`cost_model_for_bottleneck`
  returns the latency-priority model in that case.
"""

from __future__ import annotations

from repro.bottleneck.detector import Bottleneck
from repro.core.cost_model import CostBreakdown, CostModel


def cost_model_for_bottleneck(
    bottleneck: Bottleneck,
    key_size: int = 16,
    value_size: int = 128,
) -> CostModel:
    """Build the cost model appropriate for a detected bottleneck.

    Args:
        bottleneck: The constraining resource.
        key_size: Representative key size in bytes (used to seed the fixed
            cost values; breakdown-backed models still honour per-request
            sizes).
        value_size: Representative value size in bytes.

    Returns:
        A :class:`~repro.core.cost_model.CostModel` suitable for the adaptive
        policy under that bottleneck.
    """
    if bottleneck is Bottleneck.CPU:
        return CostModel.cpu_bottleneck(key_size=key_size, value_size=value_size)
    if bottleneck is Bottleneck.NETWORK:
        return CostModel.network_bottleneck(key_size=key_size, value_size=value_size)
    if bottleneck is Bottleneck.DISK:
        breakdown = CostBreakdown(
            serialize_per_byte=0.001,
            deserialize_per_byte=0.001,
            read_op=2.0,  # backend reads hit storage, dominating the miss cost
            update_op=0.2,
            delete_op=0.05,
        )
        return CostModel.cpu_bottleneck(
            key_size=key_size, value_size=value_size, breakdown=breakdown
        )
    return CostModel.latency_priority()
