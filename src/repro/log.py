"""Stdlib logging setup for the ``repro`` package.

Library modules take the standard approach: a module-level
``logging.getLogger(__name__)`` and no handler/level configuration of their
own, so embedding applications keep full control.  The CLI entry point calls
:func:`configure_logging` once, mapping ``-v/--verbose`` and ``-q/--quiet``
to levels; without it, stdlib defaults apply (warnings and above to stderr).
"""

from __future__ import annotations

import logging

__all__ = ["configure_logging"]

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def configure_logging(verbosity: int = 0, quiet: bool = False) -> int:
    """Configure root ``repro`` logging for CLI use; returns the level set.

    ``quiet`` wins over any ``verbosity`` count: ERROR.  Otherwise
    ``verbosity`` 0 means INFO and 1+ means DEBUG.
    """
    if quiet:
        level = logging.ERROR
    elif verbosity >= 1:
        level = logging.DEBUG
    else:
        level = logging.INFO
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    logger.propagate = False
    return level
