"""Declarative experiment grids.

An :class:`ExperimentSpec` names the axes of an evaluation — policies,
workloads, staleness bounds, cache capacities, channels — and expands into the
cross product of concrete :class:`RunCell` instances.  Cells are plain,
picklable data, so they can be fanned out across worker processes and recorded
verbatim next to their results.

Seeding is deterministic and *workload-anchored*: a cell's seed is a stable
hash of the workload coordinates (name, parameters, duration, base seed) and
is independent of the policy, bound, capacity, and channel axes.  Every cell
that replays the same workload therefore replays an *identical* trace, which
is what makes the resulting policy comparisons meaningful — and results
reproducible regardless of how many worker processes executed the grid.
"""

from __future__ import annotations

import itertools
import json
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ChannelSpec:
    """Parameters of a lossy/delayed backend-to-cache channel."""

    loss_probability: float = 0.0
    delay: float = 0.0
    jitter: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flatten to primitives for serialisation."""
        return asdict(self)


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """A workload axis entry: registry name plus constructor parameters."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, params: Optional[Mapping[str, Any]] = None) -> "WorkloadSpec":
        """Build a spec from a name and a parameter mapping."""
        items = tuple(sorted((params or {}).items()))
        return cls(name=name, params=items)

    def params_dict(self) -> Dict[str, Any]:
        """Return the parameters as a plain dict."""
        return dict(self.params)

    @property
    def label(self) -> str:
        """Short human-readable label used in reports."""
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}({inner})"


@dataclass(frozen=True, slots=True)
class RunCell:
    """One fully-specified simulation run within an experiment grid."""

    experiment: str
    cell_id: int
    policy: str
    workload: str
    workload_params: Tuple[Tuple[str, Any], ...]
    staleness_bound: float
    cache_capacity: Optional[int]
    channel: Optional[ChannelSpec]
    duration: float
    seed: int
    cost_preset: str = "fixed"
    cost_params: Tuple[Tuple[str, Any], ...] = ()

    def describe(self) -> Dict[str, Any]:
        """Flatten the cell coordinates for result rows and logs."""
        return {
            "experiment": self.experiment,
            "cell_id": self.cell_id,
            "policy": self.policy,
            "workload": self.workload,
            "workload_params": dict(self.workload_params),
            "staleness_bound": self.staleness_bound,
            "cache_capacity": self.cache_capacity,
            "channel": self.channel.as_dict() if self.channel is not None else None,
            "duration": self.duration,
            "seed": self.seed,
            "cost_preset": self.cost_preset,
        }


def stable_cell_seed(
    base_seed: int,
    workload: str,
    workload_params: Mapping[str, Any] | Sequence[Tuple[str, Any]],
    duration: float,
) -> int:
    """Derive a deterministic, process-independent seed for a workload cell.

    Uses CRC-32 over a canonical JSON encoding (``hash()`` is randomised per
    interpreter and would break cross-process reproducibility).  The seed
    intentionally ignores the policy/bound/capacity/channel axes so that every
    cell sharing a workload replays the identical trace.
    """
    payload = json.dumps(
        {
            "base_seed": base_seed,
            "workload": workload,
            "params": sorted((key, repr(value)) for key, value in dict(workload_params).items()),
            "duration": duration,
        },
        sort_keys=True,
    )
    return (base_seed * 0x9E3779B1 + zlib.crc32(payload.encode())) % 2**32


@dataclass(slots=True)
class ExperimentSpec:
    """The declarative description of an experiment grid.

    Attributes:
        name: Experiment name, recorded in every result row.
        policies: Policy registry names to evaluate.
        workloads: Workload axis; entries are :class:`WorkloadSpec` or bare
            registry names (expanded with default parameters).
        staleness_bounds: Staleness bounds ``T`` in seconds.
        cache_capacities: Cache capacity axis (``None`` = unbounded).
        channels: Channel axis (``None`` = ideal channel).
        duration: Trace duration in seconds, shared by every cell.
        base_seed: Root of the deterministic per-cell seeding.
        cost_preset: Cost-model preset name (see the registry).
        cost_params: Keyword overrides for the preset.
    """

    name: str
    policies: Sequence[str]
    workloads: Sequence[Union[str, WorkloadSpec]]
    staleness_bounds: Sequence[float]
    cache_capacities: Sequence[Optional[int]] = (None,)
    channels: Sequence[Optional[ChannelSpec]] = (None,)
    duration: float = 10.0
    base_seed: int = 0
    cost_preset: str = "fixed"
    cost_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.policies:
            raise ConfigurationError("an experiment needs at least one policy")
        if not self.workloads:
            raise ConfigurationError("an experiment needs at least one workload")
        if not self.staleness_bounds:
            raise ConfigurationError("an experiment needs at least one staleness bound")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")

    def normalized_workloads(self) -> List[WorkloadSpec]:
        """Return the workload axis with bare names promoted to specs."""
        return [
            workload if isinstance(workload, WorkloadSpec) else WorkloadSpec.of(workload)
            for workload in self.workloads
        ]

    @property
    def num_cells(self) -> int:
        """Size of the expanded grid."""
        return (
            len(self.policies)
            * len(self.workloads)
            * len(self.staleness_bounds)
            * len(self.cache_capacities)
            * len(self.channels)
        )

    def expand(self) -> List[RunCell]:
        """Expand the grid into concrete, deterministically-seeded cells."""
        cost_params = tuple(sorted(self.cost_params.items()))
        cells: List[RunCell] = []
        grid = itertools.product(
            self.normalized_workloads(),
            self.staleness_bounds,
            self.cache_capacities,
            self.channels,
            self.policies,
        )
        for cell_id, (workload, bound, capacity, channel, policy) in enumerate(grid):
            seed = stable_cell_seed(self.base_seed, workload.name, workload.params, self.duration)
            cells.append(
                RunCell(
                    experiment=self.name,
                    cell_id=cell_id,
                    policy=policy,
                    workload=workload.name,
                    workload_params=workload.params,
                    staleness_bound=float(bound),
                    cache_capacity=capacity,
                    channel=channel,
                    duration=float(self.duration),
                    seed=seed,
                    cost_preset=self.cost_preset,
                    cost_params=cost_params,
                )
            )
        return cells
