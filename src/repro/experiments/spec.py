"""Declarative experiment grids.

An :class:`ExperimentSpec` names the axes of an evaluation — policies,
workloads, staleness bounds, cache capacities, channels — and expands into the
cross product of concrete :class:`RunCell` instances.  Cells are plain,
picklable data, so they can be fanned out across worker processes and recorded
verbatim next to their results.

Seeding is deterministic and *workload-anchored*: a cell's seed is a stable
hash of the workload coordinates (name, parameters, duration, base seed) and
is independent of the policy, bound, capacity, and channel axes.  Every cell
that replays the same workload therefore replays an *identical* trace, which
is what makes the resulting policy comparisons meaningful — and results
reproducible regardless of how many worker processes executed the grid.
"""

from __future__ import annotations

import itertools
import json
import zlib
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.concurrency.config import (
    SERVICE_TIME_DISTRIBUTIONS,
    STAMPEDE_POLICIES,
    ConcurrencyConfig,
)
from repro.errors import ConfigurationError
from repro.resilience.chaos import ChaosSpec


@dataclass(frozen=True, slots=True)
class ChannelSpec:
    """Parameters of a lossy/delayed backend-to-cache channel.

    ``retries``/``retry_timeout``/``retry_backoff`` give senders bounded
    re-attempts against probabilistic loss (see
    :class:`~repro.backend.channel.Channel`); the defaults keep the channel
    fire-and-forget and byte-identical to pre-retry rows.
    """

    loss_probability: float = 0.0
    delay: float = 0.0
    jitter: float = 0.0
    retries: int = 0
    retry_timeout: float = 0.0
    retry_backoff: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flatten to primitives for serialisation."""
        return asdict(self)


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A cluster-scenario axis entry: registry name plus parameters.

    Kept declarative (a name and primitive parameters) so cells stay
    picklable and serialisable; the runner materialises the actual
    :class:`~repro.cluster.scenarios.Scenario` via
    :func:`repro.cluster.scenarios.make_scenario`.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, params: Optional[Mapping[str, Any]] = None) -> "ScenarioSpec":
        """Build a spec from a name and a parameter mapping."""
        items = tuple(sorted((params or {}).items()))
        return cls(name=name, params=items)

    def params_dict(self) -> Dict[str, Any]:
        """Return the parameters as a plain dict."""
        return dict(self.params)

    def as_dict(self) -> Dict[str, Any]:
        """Flatten to primitives for serialisation."""
        return {"name": self.name, "params": dict(self.params)}


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """A workload axis entry: registry name plus constructor parameters."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, params: Optional[Mapping[str, Any]] = None) -> "WorkloadSpec":
        """Build a spec from a name and a parameter mapping."""
        items = tuple(sorted((params or {}).items()))
        return cls(name=name, params=items)

    def params_dict(self) -> Dict[str, Any]:
        """Return the parameters as a plain dict."""
        return dict(self.params)

    @property
    def label(self) -> str:
        """Short human-readable label used in reports."""
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}({inner})"


@dataclass(frozen=True, slots=True)
class RunCell:
    """One fully-specified simulation run within an experiment grid."""

    experiment: str
    cell_id: int
    policy: str
    workload: str
    workload_params: Tuple[Tuple[str, Any], ...]
    staleness_bound: float
    cache_capacity: Optional[int]
    channel: Optional[ChannelSpec]
    duration: float
    seed: int
    cost_preset: str = "fixed"
    cost_params: Tuple[Tuple[str, Any], ...] = ()
    # Cluster coordinates.  ``num_nodes=None`` means a single-cache cell
    # executed by the plain Simulation; any integer switches the cell to a
    # ClusterSimulation with that fleet size.
    num_nodes: Optional[int] = None
    replication: int = 1
    read_policy: str = "primary"
    scenario: Optional[ScenarioSpec] = None
    hot_policy: Optional[str] = None
    hot_fraction: float = 0.02
    vnodes: int = 64
    # Persistence coordinates.  ``persistence=True`` runs the cell with a
    # write-ahead log + snapshots in a per-cell scratch directory and records
    # the deterministic store counters in the row.
    persistence: bool = False
    snapshot_interval: Optional[float] = None
    # Tier coordinates.  ``l1_capacity=0`` keeps the cell single-tier (and
    # byte-identical to a cell without any tier coordinates — test-pinned);
    # a positive capacity fronts every node's cache with an L1 in
    # ``tier_mode`` using the ``tier_admission`` policy.
    l1_capacity: int = 0
    tier_mode: str = "write-through"
    tier_admission: str = "second-hit"
    # Replay engine.  ``"scalar"`` streams the workload through the classic
    # loop; ``"vector"`` compiles it to columnar arrays first and replays
    # through the vector engine (byte-identical results, different wall
    # clock) — cells outside the vectorizable envelope fall back to the
    # scalar loop automatically.
    engine: str = "scalar"
    # Observability.  ``obs_window=None`` (default) replays with zero
    # telemetry overhead; a positive window samples windowed time-series,
    # spans, and events (see :mod:`repro.obs`) into the row's ``obs`` key.
    # Result counters are byte-identical either way.
    obs_window: Optional[float] = None
    # SLO rules as a *canonical JSON string* (see
    # :func:`repro.obs.slo.canonical_rules`) so the frozen cell stays
    # hashable and picklable.  Evaluated post-run against the cell's obs
    # payload into the row's ``slo`` key; requires ``obs_window``.
    slo_rules: Optional[str] = None
    # Concurrency coordinates.  ``None`` (default) replays with the classic
    # instant-fetch engines (byte-identical, test-pinned); a
    # :class:`~repro.concurrency.ConcurrencyConfig` enables the in-flight
    # fetch model (service times, backend queueing, stampede policy, read
    # latency percentiles).  The config's ``seed`` is rebound to the cell
    # seed by the runner, keeping the service-time streams workload-anchored.
    concurrency: Optional[ConcurrencyConfig] = None
    # Resilience coordinates.  ``zones`` spreads cluster nodes round-robin
    # over that many failure domains on the ring (labels only; placement is
    # untouched, so zones=1 cells stay byte-identical).  ``chaos`` injects a
    # seeded fault plan alongside whatever scenario the cell runs.
    zones: int = 1
    chaos: Optional["ChaosSpec"] = None

    def describe(self) -> Dict[str, Any]:
        """Flatten the cell coordinates for result rows and logs."""
        return {
            "experiment": self.experiment,
            "cell_id": self.cell_id,
            "policy": self.policy,
            "workload": self.workload,
            "workload_params": dict(self.workload_params),
            "staleness_bound": self.staleness_bound,
            "cache_capacity": self.cache_capacity,
            "channel": self.channel.as_dict() if self.channel is not None else None,
            "duration": self.duration,
            "seed": self.seed,
            "cost_preset": self.cost_preset,
            "num_nodes": self.num_nodes,
            "replication": self.replication,
            "read_policy": self.read_policy,
            "scenario": self.scenario.name if self.scenario is not None else "none",
            "scenario_params": dict(self.scenario.params) if self.scenario is not None else {},
            "hot_policy": self.hot_policy,
            "persistence": self.persistence,
            "snapshot_interval": self.snapshot_interval if self.persistence else None,
            "l1_capacity": self.l1_capacity,
            "tier_mode": self.tier_mode,
            "tier_admission": self.tier_admission,
            "engine": self.engine,
            "obs_window": self.obs_window,
            "concurrency": self.concurrency is not None,
            "stampede_policy": (
                self.concurrency.policy if self.concurrency is not None else None
            ),
            "service_time": (
                self.concurrency.service_time if self.concurrency is not None else None
            ),
            "service_mean": (
                self.concurrency.mean if self.concurrency is not None else None
            ),
            "backend_capacity": (
                self.concurrency.capacity if self.concurrency is not None else None
            ),
            "zones": self.zones,
            "chaos": self.chaos.describe() if self.chaos is not None else None,
        }


def stable_cell_seed(
    base_seed: int,
    workload: str,
    workload_params: Mapping[str, Any] | Sequence[Tuple[str, Any]],
    duration: float,
) -> int:
    """Derive a deterministic, process-independent seed for a workload cell.

    Uses CRC-32 over a canonical JSON encoding (``hash()`` is randomised per
    interpreter and would break cross-process reproducibility).  The seed
    intentionally ignores the policy/bound/capacity/channel axes so that every
    cell sharing a workload replays the identical trace.
    """
    payload = json.dumps(
        {
            "base_seed": base_seed,
            "workload": workload,
            "params": sorted((key, repr(value)) for key, value in dict(workload_params).items()),
            "duration": duration,
        },
        sort_keys=True,
    )
    return (base_seed * 0x9E3779B1 + zlib.crc32(payload.encode())) % 2**32


@dataclass(slots=True)
class ExperimentSpec:
    """The declarative description of an experiment grid.

    Attributes:
        name: Experiment name, recorded in every result row.
        policies: Policy registry names to evaluate.
        workloads: Workload axis; entries are :class:`WorkloadSpec` or bare
            registry names (expanded with default parameters).
        staleness_bounds: Staleness bounds ``T`` in seconds.
        cache_capacities: Cache capacity axis (``None`` = unbounded).
        channels: Channel axis (``None`` = ideal channel).
        num_nodes: Fleet-size axis; ``None`` entries are single-cache cells,
            integers are cluster cells (default: single-cache only).
        replications: Replication-factor axis for cluster cells.
        scenarios: Cluster-scenario axis; entries are ``None`` (steady
            state), registry names, or :class:`ScenarioSpec` instances.
        read_policy: Replica-read routing for cluster cells (not an axis).
        hot_policy: Hot-key policy name for cluster cells (``None`` disables
            hot-key switching; not an axis).
        hot_fraction: Hot-key detection threshold for cluster cells.
        vnodes: Virtual nodes per cluster node on the hash ring.
        persistence: Persistence axis; ``True`` entries run their cells with
            a write-ahead log + snapshots (scratch directory per cell) and
            add the deterministic store counters to the row.
        snapshot_intervals: Snapshot-cadence axis for persistent cells
            (``None`` = only the final checkpoint).  Non-default entries
            require every ``persistence`` entry to be ``True``.
        l1_capacities: L1-capacity axis for cluster cells (``0`` = the
            single-tier fleet, byte-identical to not setting the axis at
            all).  Positive entries require every ``num_nodes`` entry to be
            a cluster cell.
        tier_modes: Tier fill-mode axis (``"write-through"`` /
            ``"write-back"``); non-default entries require a positive
            ``l1_capacities`` axis.
        tier_admission: L1 admission policy for tiered cells (not an axis).
        engine: Replay engine for every cell (not an axis): ``"scalar"``
            streams, ``"vector"`` compiles the trace and replays columnar
            (byte-identical rows; ineligible cells fall back to scalar).
        obs_window: Telemetry window width for every cell (not an axis);
            ``None`` disables recording, any positive width attaches the
            obs payload to each row (result counters byte-identical).
        slo_rules: Declarative SLO rules (see :mod:`repro.obs.slo`)
            evaluated post-run against every cell's obs payload into the
            row's ``slo`` key; requires ``obs_window``.  Evaluation is
            deterministic, so verdicts are byte-identical across any
            ``--processes`` count.
        concurrency: Concurrency axis; ``None`` entries replay with the
            classic instant-fetch engines, each
            :class:`~repro.concurrency.ConcurrencyConfig` entry enables the
            in-flight fetch model with that service-time distribution,
            backend capacity, and stampede policy.
        stampede_policies: Stampede-mitigation axis crossed with every
            non-``None`` ``concurrency`` entry (empty = each config keeps
            its own ``policy``).  Entries must name registered policies.
        service_times: Service-time-distribution axis crossed with every
            non-``None`` ``concurrency`` entry (empty = each config keeps
            its own ``service_time``).
        zones: Failure-domain count for cluster cells (not an axis): nodes
            are labeled round-robin over ``zones`` domains on the ring.
            Labels never affect placement, so ``zones=1`` is byte-identical
            to not setting it; ``zone-outage`` cells need ``zones >= 2``.
        chaos: Seeded fault plan (:class:`~repro.resilience.chaos.ChaosSpec`)
            injected into every cluster cell alongside its scenario (not an
            axis; ``None`` disables injection).
        duration: Trace duration in seconds, shared by every cell.
        base_seed: Root of the deterministic per-cell seeding.
        cost_preset: Cost-model preset name (see the registry).
        cost_params: Keyword overrides for the preset.
    """

    name: str
    policies: Sequence[str]
    workloads: Sequence[Union[str, WorkloadSpec]]
    staleness_bounds: Sequence[float]
    cache_capacities: Sequence[Optional[int]] = (None,)
    channels: Sequence[Optional[ChannelSpec]] = (None,)
    num_nodes: Sequence[Optional[int]] = (None,)
    replications: Sequence[int] = (1,)
    scenarios: Sequence[Union[None, str, ScenarioSpec]] = (None,)
    read_policy: str = "primary"
    hot_policy: Optional[str] = None
    hot_fraction: float = 0.02
    vnodes: int = 64
    persistence: Sequence[bool] = (False,)
    snapshot_intervals: Sequence[Optional[float]] = (None,)
    l1_capacities: Sequence[int] = (0,)
    tier_modes: Sequence[str] = ("write-through",)
    tier_admission: str = "second-hit"
    engine: str = "scalar"
    obs_window: Optional[float] = None
    slo_rules: Optional[Sequence[Mapping[str, Any]]] = None
    concurrency: Sequence[Optional[ConcurrencyConfig]] = (None,)
    stampede_policies: Sequence[str] = ()
    service_times: Sequence[str] = ()
    zones: int = 1
    chaos: Optional[ChaosSpec] = None
    duration: float = 10.0
    base_seed: int = 0
    cost_preset: str = "fixed"
    cost_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.policies:
            raise ConfigurationError("an experiment needs at least one policy")
        if not self.workloads:
            raise ConfigurationError("an experiment needs at least one workload")
        if not self.staleness_bounds:
            raise ConfigurationError("an experiment needs at least one staleness bound")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.engine not in ("scalar", "vector"):
            raise ConfigurationError(
                f"engine must be 'scalar' or 'vector', got {self.engine!r}"
            )
        if self.obs_window is not None and self.obs_window <= 0:
            raise ConfigurationError(
                f"obs_window must be positive (or None to disable), got {self.obs_window}"
            )
        if self.slo_rules is not None:
            if self.obs_window is None:
                raise ConfigurationError(
                    "slo_rules are evaluated against the obs payload; set "
                    "obs_window to record one"
                )
            from repro.obs.slo import validate_rules

            try:
                validate_rules(self.slo_rules)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from exc
        for nodes in self.num_nodes:
            if nodes is not None and nodes < 1:
                raise ConfigurationError(f"num_nodes entries must be >= 1, got {nodes}")
        for factor in self.replications:
            if factor < 1:
                raise ConfigurationError(f"replication factors must be >= 1, got {factor}")
        # Cross-check the cluster axes up front: a bad combination would
        # otherwise only surface inside a worker mid-sweep, losing every
        # already-computed row.
        cluster_sizes = [nodes for nodes in self.num_nodes if nodes is not None]
        if cluster_sizes:
            smallest, largest_factor = min(cluster_sizes), max(self.replications)
            if largest_factor > smallest:
                raise ConfigurationError(
                    f"replication factor {largest_factor} exceeds the smallest "
                    f"fleet size {smallest} on the num_nodes axis"
                )
            # Clairvoyant policies cannot run in cluster mode (no future
            # index is built); reject them before the sweep starts.
            from repro.experiments.registry import make_policy

            hot_policies = [self.hot_policy] if self.hot_policy is not None else []
            for policy in list(self.policies) + hot_policies:
                if make_policy(policy).needs_future:
                    raise ConfigurationError(
                        f"clairvoyant policy {policy!r} is not supported in "
                        "cluster cells (num_nodes axis)"
                    )
        wants_cluster_features = self.hot_policy is not None or any(
            scenario not in (None, "none", "") for scenario in self.scenarios
        )
        if wants_cluster_features and len(cluster_sizes) != len(self.num_nodes):
            raise ConfigurationError(
                "scenarios and hot_policy only apply to cluster cells; every "
                "num_nodes entry must be an integer fleet size (got "
                f"{list(self.num_nodes)}) or the single-cache rows would be "
                "labeled with a scenario that never ran"
            )
        if not self.persistence:
            raise ConfigurationError("the persistence axis needs at least one entry")
        for interval in self.snapshot_intervals:
            if interval is not None and interval <= 0:
                raise ConfigurationError(
                    f"snapshot intervals must be positive, got {interval}"
                )
        if any(interval is not None for interval in self.snapshot_intervals) and not all(
            self.persistence
        ):
            raise ConfigurationError(
                "snapshot intervals only apply to persistent cells; every "
                f"persistence entry must be True (got {list(self.persistence)}) "
                "or the non-persistent rows would be labeled with a snapshot "
                "cadence that never ran"
            )
        # Tier axes: validate entries eagerly and keep them off single-cache
        # cells (the plain Simulation has no L1 to run).
        if not self.l1_capacities or not self.tier_modes:
            raise ConfigurationError(
                "the l1_capacities and tier_modes axes each need at least one entry"
            )
        for capacity in self.l1_capacities:
            if capacity < 0:
                raise ConfigurationError(
                    f"l1_capacities entries must be >= 0, got {capacity}"
                )
        from repro.tier.config import ADMISSION_POLICIES, TIER_MODES

        for mode in self.tier_modes:
            if mode not in TIER_MODES:
                raise ConfigurationError(
                    f"tier_modes entries must be one of {TIER_MODES}, got {mode!r}"
                )
        if self.tier_admission not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"tier_admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.tier_admission!r}"
            )
        wants_tier = any(capacity > 0 for capacity in self.l1_capacities)
        if wants_tier and len(cluster_sizes) != len(self.num_nodes):
            raise ConfigurationError(
                "the l1_capacities axis only applies to cluster cells; every "
                "num_nodes entry must be an integer fleet size (got "
                f"{list(self.num_nodes)}) or the single-cache rows would be "
                "labeled with an L1 that never ran"
            )
        if not wants_tier and tuple(self.tier_modes) != ("write-through",):
            raise ConfigurationError(
                "tier_modes only takes effect with a positive l1_capacities "
                f"axis (got l1_capacities={list(self.l1_capacities)})"
            )
        tier_scenarios = [
            scenario
            for scenario in self.normalized_scenarios()
            if scenario is not None and scenario.name in ("l2-outage", "cold-l1")
        ]
        if tier_scenarios and (not wants_tier or any(c == 0 for c in self.l1_capacities)):
            raise ConfigurationError(
                f"scenario {tier_scenarios[0].name!r} exercises the L1 tier; "
                "every l1_capacities entry must be positive (got "
                f"{list(self.l1_capacities)})"
            )
        # Concurrency axes: validate entries eagerly, and require a
        # non-``None`` concurrency entry before crossing the stampede-policy
        # or service-time axes (they parameterize the fetch model; labeling
        # instant-fetch rows with a policy that never ran would be a lie).
        if not self.concurrency:
            raise ConfigurationError("the concurrency axis needs at least one entry")
        for entry in self.concurrency:
            if entry is not None and not isinstance(entry, ConcurrencyConfig):
                raise ConfigurationError(
                    "concurrency entries must be None or ConcurrencyConfig, "
                    f"got {entry!r}"
                )
        for policy in self.stampede_policies:
            if policy not in STAMPEDE_POLICIES:
                raise ConfigurationError(
                    f"stampede_policies entries must be one of "
                    f"{STAMPEDE_POLICIES}, got {policy!r}"
                )
        for service in self.service_times:
            if service not in SERVICE_TIME_DISTRIBUTIONS:
                raise ConfigurationError(
                    f"service_times entries must be one of "
                    f"{SERVICE_TIME_DISTRIBUTIONS}, got {service!r}"
                )
        has_concurrency = any(entry is not None for entry in self.concurrency)
        if (self.stampede_policies or self.service_times) and not has_concurrency:
            raise ConfigurationError(
                "stampede_policies and service_times parameterize the "
                "in-flight fetch model; add a ConcurrencyConfig entry to the "
                "concurrency axis"
            )
        # Scenarios that restore nodes from durable snapshots (warm rejoin,
        # warm kill-at-t) need every cell to run with a store; surface the
        # mismatch here rather than inside a worker mid-sweep.
        for scenario in self.normalized_scenarios():
            if scenario is None:
                continue
            from repro.cluster.scenarios import make_scenario
            from repro.errors import ClusterError

            try:
                materialized = make_scenario(scenario.name, scenario.params_dict())
            except ClusterError as exc:
                raise ConfigurationError(str(exc)) from exc
            if materialized.requires_persistence:
                if not all(self.persistence):
                    raise ConfigurationError(
                        f"scenario {scenario.name!r} restores nodes from durable "
                        "snapshots; every persistence entry must be True (got "
                        f"{list(self.persistence)})"
                    )
                if any(interval is None for interval in self.snapshot_intervals):
                    raise ConfigurationError(
                        f"scenario {scenario.name!r} restores nodes from "
                        "periodic snapshots; every snapshot_intervals entry "
                        f"must be set (got {list(self.snapshot_intervals)})"
                    )
            if materialized.requires_concurrency and any(
                entry is None for entry in self.concurrency
            ):
                raise ConfigurationError(
                    f"scenario {materialized.name!r} exercises the in-flight "
                    "fetch model; every concurrency entry must be a "
                    "ConcurrencyConfig (the axis has instant-fetch entries)"
                )
            if materialized.min_zones > self.zones:
                raise ConfigurationError(
                    f"scenario {materialized.name!r} needs at least "
                    f"{materialized.min_zones} failure domains; set "
                    f"zones >= {materialized.min_zones} (got {self.zones})"
                )
        # Resilience coordinates: zones label the ring's failure domains and
        # chaos injects a seeded fault plan — both are cluster-only, and a
        # slow-node-capable plan needs the in-flight fetch model to have any
        # service time to degrade.
        if self.zones < 1:
            raise ConfigurationError(f"zones must be >= 1, got {self.zones}")
        wants_resilience = self.zones > 1 or self.chaos is not None
        if wants_resilience and len(cluster_sizes) != len(self.num_nodes):
            raise ConfigurationError(
                "zones and chaos only apply to cluster cells; every num_nodes "
                f"entry must be an integer fleet size (got {list(self.num_nodes)})"
            )
        if cluster_sizes and self.zones > min(cluster_sizes):
            raise ConfigurationError(
                f"zones ({self.zones}) exceeds the smallest fleet size "
                f"({min(cluster_sizes)}) on the num_nodes axis"
            )
        if self.chaos is not None:
            if not isinstance(self.chaos, ChaosSpec):
                raise ConfigurationError(
                    f"chaos must be a ChaosSpec, got {type(self.chaos).__name__}"
                )
            if "slow-node" in self.chaos.kinds and any(
                entry is None for entry in self.concurrency
            ):
                raise ConfigurationError(
                    "a chaos plan with 'slow-node' faults degrades backend "
                    "service times; every concurrency entry must be a "
                    "ConcurrencyConfig (the axis has instant-fetch entries)"
                )

    def normalized_workloads(self) -> List[WorkloadSpec]:
        """Return the workload axis with bare names promoted to specs."""
        return [
            workload if isinstance(workload, WorkloadSpec) else WorkloadSpec.of(workload)
            for workload in self.workloads
        ]

    def tier_combos(self) -> List[Tuple[int, str]]:
        """The (l1_capacity, tier_mode) pairs the grid actually runs.

        A zero-capacity tier is the single-tier fleet whatever its fill
        mode, so ``l1_capacity=0`` appears exactly once with the default
        mode instead of once per ``tier_modes`` entry — crossing it with
        every mode would re-run byte-identical baseline cells and emit
        indistinguishable duplicate rows.
        """
        combos: List[Tuple[int, str]] = []
        seen_zero = False
        for capacity in self.l1_capacities:
            if capacity == 0:
                if not seen_zero:
                    combos.append((0, "write-through"))
                    seen_zero = True
            else:
                combos.extend((int(capacity), mode) for mode in self.tier_modes)
        return combos

    def concurrency_combos(self) -> List[Optional[ConcurrencyConfig]]:
        """The concurrency configs the grid actually runs.

        ``None`` (instant fetch) appears exactly once however often it is
        listed; each non-``None`` base config is crossed with the
        ``stampede_policies`` and ``service_times`` axes (an empty axis
        keeps the base config's own value), deduplicating identical
        combinations so the grid never re-runs byte-identical cells.
        """
        combos: List[Optional[ConcurrencyConfig]] = []
        seen: set = set()
        for base in self.concurrency:
            if base is None:
                if None not in seen:
                    combos.append(None)
                    seen.add(None)
                continue
            policies = tuple(self.stampede_policies) or (base.policy,)
            services = tuple(self.service_times) or (base.service_time,)
            for policy in policies:
                for service in services:
                    combo = replace(base, policy=policy, service_time=service)
                    if combo not in seen:
                        combos.append(combo)
                        seen.add(combo)
        return combos

    def normalized_scenarios(self) -> List[Optional[ScenarioSpec]]:
        """Return the scenario axis with bare names promoted to specs."""
        normalized: List[Optional[ScenarioSpec]] = []
        for scenario in self.scenarios:
            if scenario is None or isinstance(scenario, ScenarioSpec):
                normalized.append(scenario)
            elif scenario in ("none", ""):
                normalized.append(None)
            else:
                normalized.append(ScenarioSpec.of(scenario))
        return normalized

    @property
    def num_cells(self) -> int:
        """Size of the expanded grid."""
        return (
            len(self.policies)
            * len(self.workloads)
            * len(self.staleness_bounds)
            * len(self.cache_capacities)
            * len(self.channels)
            * len(self.num_nodes)
            * len(self.replications)
            * len(self.scenarios)
            * len(self.persistence)
            * len(self.snapshot_intervals)
            * len(self.tier_combos())
            * len(self.concurrency_combos())
        )

    def expand(self) -> List[RunCell]:
        """Expand the grid into concrete, deterministically-seeded cells."""
        cost_params = tuple(sorted(self.cost_params.items()))
        slo_rules = None
        if self.slo_rules is not None:
            from repro.obs.slo import canonical_rules

            slo_rules = canonical_rules(self.slo_rules)
        cells: List[RunCell] = []
        grid = itertools.product(
            self.normalized_workloads(),
            self.staleness_bounds,
            self.cache_capacities,
            self.channels,
            self.num_nodes,
            self.replications,
            self.normalized_scenarios(),
            self.persistence,
            self.snapshot_intervals,
            self.tier_combos(),
            self.concurrency_combos(),
            self.policies,
        )
        for cell_id, (
            workload,
            bound,
            capacity,
            channel,
            nodes,
            replication,
            scenario,
            persistence,
            snapshot_interval,
            (l1_capacity, tier_mode),
            concurrency,
            policy,
        ) in enumerate(grid):
            seed = stable_cell_seed(self.base_seed, workload.name, workload.params, self.duration)
            cells.append(
                RunCell(
                    experiment=self.name,
                    cell_id=cell_id,
                    policy=policy,
                    workload=workload.name,
                    workload_params=workload.params,
                    staleness_bound=float(bound),
                    cache_capacity=capacity,
                    channel=channel,
                    duration=float(self.duration),
                    seed=seed,
                    cost_preset=self.cost_preset,
                    cost_params=cost_params,
                    num_nodes=nodes,
                    replication=int(replication),
                    read_policy=self.read_policy,
                    scenario=scenario,
                    hot_policy=self.hot_policy,
                    hot_fraction=self.hot_fraction,
                    vnodes=self.vnodes,
                    persistence=bool(persistence),
                    snapshot_interval=(
                        float(snapshot_interval) if snapshot_interval is not None else None
                    ),
                    l1_capacity=int(l1_capacity),
                    tier_mode=tier_mode,
                    tier_admission=self.tier_admission,
                    engine=self.engine,
                    obs_window=(
                        float(self.obs_window) if self.obs_window is not None else None
                    ),
                    slo_rules=slo_rules,
                    concurrency=concurrency,
                    zones=self.zones,
                    chaos=self.chaos,
                )
            )
        return cells
