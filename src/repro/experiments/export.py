"""Result export: JSON and CSV.

Rows are the flat dictionaries produced by
:func:`repro.experiments.runner.run_experiment`.  Columns are ordered by
first appearance across all rows so files are stable and diff-friendly;
nested values (workload parameters, channel settings) are JSON-encoded in
CSV cells.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence


def _column_order(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Union of row keys, ordered by first appearance."""
    columns: Dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key)
    return list(columns)


def write_results_json(
    rows: Sequence[Mapping[str, Any]],
    path: str | Path,
    metadata: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write result rows (plus optional run metadata) as a JSON document."""
    path = Path(path)
    document = {"metadata": dict(metadata or {}), "results": [dict(row) for row in rows]}
    with path.open("w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def write_results_csv(rows: Sequence[Mapping[str, Any]], path: str | Path) -> Path:
    """Write result rows as CSV with a stable column order."""
    path = Path(path)
    columns = _column_order(rows)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in rows:
            writer.writerow([_cell(row.get(column)) for column in columns])
    return path


def _cell(value: Any) -> Any:
    """Flatten nested values so CSV cells stay machine-parseable."""
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(value, sort_keys=True)
    if value is None:
        return ""
    return value
