"""Parallel execution of experiment grids.

Each :class:`~repro.experiments.spec.RunCell` is an independent simulation, so
a grid parallelises trivially across a :mod:`multiprocessing` pool.  Workers
regenerate their cell's workload from its deterministic seed and *stream* it
into the simulator, so even very long traces never materialize — per-worker
memory stays constant regardless of trace length.

Results come back as plain dictionaries (cell coordinates merged with the
:meth:`~repro.sim.results.SimulationResult.as_dict` counters), sorted by cell
id, so serial and parallel execution produce byte-identical outputs.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import tempfile
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Dict, Iterator, List, Optional

from repro.backend.channel import Channel
from repro.cluster import (
    ClusterSimulation,
    HotKeyConfig,
    ReplicationConfig,
    VectorClusterSimulation,
    make_scenario,
)
from repro.experiments.registry import make_cost_model, make_policy, make_workload
from repro.experiments.spec import ExperimentSpec, RunCell
from repro.obs.recorder import ObsConfig
from repro.sim.simulation import Simulation
from repro.sim.vector import VectorSimulation
from repro.store.snapshot import StoreConfig
from repro.tier.config import TierConfig
from repro.workload.compiled import compile_workload

_LOG = logging.getLogger(__name__)


@contextmanager
def _cell_store(cell: RunCell) -> Iterator[Optional[StoreConfig]]:
    """Yield a scratch-directory store config for persistent cells.

    The directory is deleted after the run: the row keeps only the
    deterministic store counters, so results stay byte-identical regardless
    of where the scratch space lived or how many workers ran the grid.
    """
    if not cell.persistence:
        yield None
        return
    with tempfile.TemporaryDirectory(prefix="repro-store-") as root:
        yield StoreConfig(root=root, snapshot_interval=cell.snapshot_interval)


def run_cell(cell: RunCell) -> Dict[str, Any]:
    """Execute one grid cell and return its flattened result row.

    Cells with ``num_nodes`` set run a :class:`ClusterSimulation`; the rest
    run the single-cache :class:`Simulation`.  The workload streams straight
    from its generator into the simulator; channels are seeded from the cell
    seed so loss and jitter are reproducible as well.
    """
    if cell.num_nodes is not None:
        return _run_cluster_cell(cell)
    workload = make_workload(cell.workload, seed=cell.seed, params=dict(cell.workload_params))
    policy = make_policy(cell.policy)
    costs = make_cost_model(cell.cost_preset, dict(cell.cost_params))
    channel = None
    if cell.channel is not None:
        channel = Channel(
            loss_probability=cell.channel.loss_probability,
            delay=cell.channel.delay,
            jitter=cell.channel.jitter,
            seed=cell.seed,
        )
    with _cell_store(cell) as store:
        shared = dict(
            policy=policy,
            staleness_bound=cell.staleness_bound,
            costs=costs,
            cache_capacity=cell.cache_capacity,
            channel=channel,
            duration=cell.duration,
            workload_name=workload.name,
            store=store,
            obs=_cell_obs(cell),
            concurrency=_cell_concurrency(cell),
        )
        if cell.engine == "vector":
            # The vector simulation replays ineligible configurations (e.g.
            # capacity-bounded or persistent cells) through the inherited
            # scalar loop, so every cell stays byte-identical to a scalar
            # sweep of the same grid.
            simulation = VectorSimulation(
                compile_workload(workload, cell.duration), **shared
            )
        else:
            simulation = Simulation(
                workload=workload.iter_requests(cell.duration), **shared
            )
        row = dict(cell.describe())
        row.update(simulation.run().as_dict())
        if store is not None:
            row["store"] = simulation.store_stats()
        if simulation.obs is not None:
            row["obs"] = simulation.obs.payload()
    _attach_slo(cell, row)
    return row


def _cell_concurrency(cell: RunCell):
    """The cell's concurrency config re-seeded from the cell seed.

    Seeding here (not in the spec) keeps the axis value hashable and
    seed-free for dedup while still giving every cell its own service-time
    and XFetch streams, derived from the same seed as its workload.
    """
    if cell.concurrency is None:
        return None
    return replace(cell.concurrency, seed=cell.seed)


def _cell_obs(cell: RunCell) -> Optional[ObsConfig]:
    """Observability settings for a cell (``None`` keeps the zero-cost path)."""
    if cell.obs_window is None:
        return None
    return ObsConfig(window=cell.obs_window)


def _attach_slo(cell: RunCell, row: Dict[str, Any]) -> None:
    """Evaluate the cell's SLO rules against its obs payload into ``row["slo"]``.

    Strictly post-hoc: the simulation has already finished and the obs
    payload is read, never mutated, so enabling SLO evaluation leaves result
    rows and payloads byte-identical.  Evaluation is deterministic, which
    makes the verdicts identical across any ``--processes`` split.
    """
    if cell.slo_rules is None:
        return
    from repro.obs.slo import evaluate_slo

    row["slo"] = evaluate_slo(row["obs"], json.loads(cell.slo_rules))


def _run_cluster_cell(cell: RunCell) -> Dict[str, Any]:
    """Execute one cluster grid cell (sharded fleet simulation)."""
    workload = make_workload(cell.workload, seed=cell.seed, params=dict(cell.workload_params))
    costs = make_cost_model(cell.cost_preset, dict(cell.cost_params))
    scenario = (
        make_scenario(cell.scenario.name, cell.scenario.params_dict())
        if cell.scenario is not None
        else None
    )
    hotkey = (
        HotKeyConfig(hot_policy=cell.hot_policy, hot_fraction=cell.hot_fraction)
        if cell.hot_policy is not None
        else None
    )
    # A zero-capacity config is normalised to "no tier" by the cluster, so
    # l1_capacity=0 cells replay the single-tier path byte-for-byte.
    tier = TierConfig(
        l1_capacity=cell.l1_capacity,
        mode=cell.tier_mode,
        admission=cell.tier_admission,
    )
    with _cell_store(cell) as store:
        shared = dict(
            policy=cell.policy,
            num_nodes=cell.num_nodes,
            staleness_bound=cell.staleness_bound,
            costs=costs,
            replication=ReplicationConfig(factor=cell.replication, read_policy=cell.read_policy),
            cache_capacity=cell.cache_capacity,
            channel=cell.channel,
            scenario=scenario,
            hotkey=hotkey,
            duration=cell.duration,
            workload_name=workload.name,
            vnodes=cell.vnodes,
            seed=cell.seed,
            store=store,
            tier=tier,
            obs=_cell_obs(cell),
            concurrency=_cell_concurrency(cell),
            zones=cell.zones,
            chaos=cell.chaos,
        )
        if cell.engine == "vector":
            # Falls back to the scalar routing loop for configurations the
            # columnar fleet engine cannot replay (scenarios, lossy
            # channels, tiers, persistence) — rows stay byte-identical.
            cluster = VectorClusterSimulation(
                compile_workload(workload, cell.duration), **shared
            )
        else:
            cluster = ClusterSimulation(
                workload=workload.iter_requests(cell.duration), **shared
            )
        row = dict(cell.describe())
        row.update(cluster.run().as_dict())
    _attach_slo(cell, row)
    return row


def run_experiment(
    spec: ExperimentSpec,
    processes: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run every cell of an experiment grid, optionally in parallel.

    Args:
        spec: The experiment grid to expand and execute.
        processes: Worker process count.  ``None`` picks ``min(cpu_count,
            number of cells)``; ``0`` or ``1`` runs serially in-process
            (useful for debugging and for platforms without ``fork``).

    Returns:
        One result row per cell, ordered by cell id regardless of the
        execution schedule.
    """
    cells = spec.expand()
    if processes is None:
        processes = min(os.cpu_count() or 1, len(cells))
    _LOG.debug("experiment '%s': %d cells on %d process(es)",
               spec.name, len(cells), max(processes, 1))
    if processes <= 1 or len(cells) <= 1:
        rows = [run_cell(cell) for cell in cells]
    else:
        with multiprocessing.Pool(processes=processes) as pool:
            rows = pool.map(run_cell, cells, chunksize=1)
    rows.sort(key=lambda row: row["cell_id"])
    return rows
