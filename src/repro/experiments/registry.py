"""Name-based registries for policies, workloads, and cost models.

Experiment specs are declarative — plain names and parameter dicts — so that
they can be expanded into grid cells, pickled across process boundaries, and
serialised into result files.  This module is the single place that maps
those names onto concrete component instances.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.core.adaptive import AdaptivePolicy, CacheStateAdaptivePolicy
from repro.core.cost_model import CostModel
from repro.core.optimal import OptimalPolicy
from repro.core.policy import FreshnessPolicy
from repro.core.ttl import TTLExpiryPolicy, TTLPollingPolicy
from repro.core.write_reactive import AlwaysInvalidatePolicy, AlwaysUpdatePolicy
from repro.errors import ConfigurationError
from repro.workload.base import Workload
from repro.workload.meta import MetaWorkload
from repro.workload.mixed import PoissonMixWorkload
from repro.workload.poisson import PoissonZipfWorkload
from repro.workload.trace import TraceWorkload
from repro.workload.twitter import TwitterWorkload

POLICY_FACTORIES: Dict[str, Callable[[], FreshnessPolicy]] = {
    "ttl-expiry": TTLExpiryPolicy,
    "ttl-polling": TTLPollingPolicy,
    "invalidate": AlwaysInvalidatePolicy,
    "update": AlwaysUpdatePolicy,
    "adaptive": AdaptivePolicy,
    "adaptive+cs": CacheStateAdaptivePolicy,
    "optimal": OptimalPolicy,
}

WORKLOAD_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "poisson": PoissonZipfWorkload,
    "poisson-mix": PoissonMixWorkload,
    "meta": MetaWorkload,
    "twitter": TwitterWorkload,
    "trace": TraceWorkload,
}

COST_PRESETS: Dict[str, Callable[..., CostModel]] = {
    "fixed": CostModel,
    "cpu": CostModel.cpu_bottleneck,
    "network": CostModel.network_bottleneck,
    "latency": CostModel.latency_priority,
}


def make_policy(name: str) -> FreshnessPolicy:
    """Build a fresh policy instance by registry name.

    Raises:
        ConfigurationError: If the name is not registered.
    """
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown policy {name!r}; expected one of {sorted(POLICY_FACTORIES)}"
        ) from exc
    return factory()


def make_workload(
    name: str, seed: Optional[int] = None, params: Optional[Mapping[str, Any]] = None
) -> Workload:
    """Build a workload by registry name with keyword parameters.

    ``seed`` is threaded through for the synthetic generators; trace-backed
    workloads ignore it (their streams are already fixed).

    Raises:
        ConfigurationError: If the name is not registered.
    """
    try:
        factory = WORKLOAD_FACTORIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOAD_FACTORIES)}"
        ) from exc
    kwargs: Dict[str, Any] = dict(params or {})
    if name != "trace" and seed is not None:
        kwargs.setdefault("seed", seed)
    return factory(**kwargs)


def make_cost_model(
    preset: str = "fixed", params: Optional[Mapping[str, Any]] = None
) -> CostModel:
    """Build a cost model from a preset name plus keyword overrides.

    Raises:
        ConfigurationError: If the preset is not registered.
    """
    try:
        factory = COST_PRESETS[preset]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown cost preset {preset!r}; expected one of {sorted(COST_PRESETS)}"
        ) from exc
    return factory(**dict(params or {}))
