"""Throughput benchmarking of the streaming simulation pipeline.

``python -m repro bench`` replays the same streamed Poisson/Zipf trace under
several policies and records requests/second plus the process's peak RSS in a
``BENCH_<timestamp>.json`` record.  The workload is *generated while it is
consumed* — generation cost is part of the measured pipeline, exactly like a
production replay — and peak RSS staying flat as ``--requests`` grows is the
observable evidence that the pipeline is constant-memory.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import tempfile
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.cluster import ClusterSimulation, ReplicationConfig, replay_cluster_parallel
from repro.errors import ConfigurationError
from repro.experiments.registry import make_policy
from repro.obs.metrics import MetricsRegistry
from repro.sim.simulation import Simulation
from repro.sim.vector import VectorSimulation
from repro.store.format import KIND_WRITE, WalScan
from repro.store.wal import WriteAheadLog
from repro.tier.config import TierConfig
from repro.workload.compiled import compile_workload
from repro.workload.poisson import PoissonZipfWorkload

DEFAULT_BENCH_POLICIES = ("ttl-expiry", "ttl-polling", "invalidate", "update", "adaptive")

BENCH_ENGINES = ("scalar", "vector")

#: The per-phase timing schema of a bench row.  This tuple is the single
#: source of truth shared by :func:`bench_policy` (which emits the fields),
#: the obs exporters (which surface them), and ``scripts/check_bench.py``
#: (which refuses records missing any of them) — change it in one place.
BENCH_PHASES = (
    "wall_seconds",
    "generation_seconds",
    "merge_seconds",
    "replay_seconds",
)


def phase_timings(
    wall_seconds: float, generation_seconds: float, merge_seconds: float
) -> Dict[str, float]:
    """Fold raw phase clocks into the pinned :data:`BENCH_PHASES` schema.

    Timings route through a :class:`~repro.obs.metrics.MetricsRegistry` so a
    bench row's phase fields are exactly the registry's gauges — the same
    representation the obs exporters use — and ``replay_seconds`` is derived
    in one place (wall minus generation minus merge, floored at zero: the
    phases are measured by separate clock reads, so tiny negative remainders
    are measurement noise, not negative replay work).
    """
    registry = MetricsRegistry()
    registry.gauge("wall_seconds").set(wall_seconds)
    registry.gauge("generation_seconds").set(generation_seconds)
    registry.gauge("merge_seconds").set(merge_seconds)
    registry.gauge("replay_seconds").set(
        max(wall_seconds - generation_seconds - merge_seconds, 0.0)
    )
    return {name: registry.gauge(name).value for name in BENCH_PHASES}


def peak_rss_kib() -> int:
    """Peak resident set size of this process in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalise to KiB.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container in CI
        peak //= 1024
    return int(peak)


def bench_policy(
    policy_name: str,
    num_requests: int,
    num_keys: int = 1000,
    staleness_bound: float = 1.0,
    read_ratio: float = 0.9,
    seed: int = 0,
    num_nodes: Optional[int] = None,
    replication: int = 1,
    tier: Optional[TierConfig] = None,
    engine: str = "scalar",
    workers: int = 1,
) -> Dict[str, Any]:
    """Replay a streamed trace of roughly ``num_requests`` under one policy.

    With ``num_nodes`` set the trace replays through a sharded
    :class:`~repro.cluster.cluster.ClusterSimulation` instead of the
    single-cache simulator, measuring the routing + fan-out overhead of the
    fleet path (cluster replay throughput).  ``tier`` additionally fronts
    every node with an L1, measuring the tiered read path.

    ``engine="vector"`` swaps the streamed pipeline for the columnar one:
    the trace is compiled to arrays (:func:`compile_workload`) and replayed
    through :class:`~repro.sim.vector.VectorSimulation` (single cache) or
    :func:`~repro.cluster.parallel.replay_cluster_parallel` (fleet, on
    ``workers`` processes).  Results are byte-identical to the scalar
    engine; only the wall clock changes.

    Timing is reported per phase so regressions are attributable:
    ``wall_seconds`` times the full pipeline first (generation interleaved
    with replay for the scalar engine, trace compilation + columnar replay
    for the vector one), then ``generation_seconds`` times a
    generation-only pass of the identical stream (a drain, or a
    re-compilation), ``merge_seconds`` is the shard-merge cost of parallel
    cluster replay (``0.0`` elsewhere), and ``replay_seconds`` is the
    remainder — the cost the simulator itself adds on top of generation.
    The generation pass runs *after* the replay so both measure the same
    warm per-workload caches (key-name tables): running it first would
    attribute the one-time warm-up to the replay phase and could mask a
    real replay-layer regression of the same size.
    """
    if engine not in BENCH_ENGINES:
        raise ConfigurationError(
            f"engine must be one of {BENCH_ENGINES}, got {engine!r}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers > 1 and num_nodes is None:
        raise ConfigurationError(
            "workers > 1 needs a cluster bench: pass num_nodes"
        )
    if workers > 1 and engine != "vector":
        raise ConfigurationError(
            "shard-parallel replay is a vector-engine feature: "
            "pass engine='vector' with workers > 1"
        )
    rate_per_key = 100.0
    duration = num_requests / (rate_per_key * num_keys)
    workload = PoissonZipfWorkload(
        num_keys=num_keys, rate_per_key=rate_per_key, read_ratio=read_ratio, seed=seed
    )
    merge_seconds = 0.0
    if engine == "vector":
        timings: Dict[str, float] = {}
        started = time.perf_counter()
        trace = compile_workload(workload, duration)
        if num_nodes is None:
            simulation = VectorSimulation(
                trace,
                policy=make_policy(policy_name),
                staleness_bound=staleness_bound,
                duration=duration,
                workload_name=workload.name,
            )
            raw = simulation.run()
        else:
            raw = replay_cluster_parallel(
                trace,
                workers=workers,
                timings=timings,
                policy=policy_name,
                num_nodes=num_nodes,
                staleness_bound=staleness_bound,
                replication=ReplicationConfig(factor=replication),
                duration=duration,
                workload_name=workload.name,
                seed=seed,
                tier=tier,
            )
        elapsed = time.perf_counter() - started
        merge_seconds = timings.get("merge_seconds", 0.0)
        started = time.perf_counter()
        compile_workload(workload, duration)
        generation_seconds = time.perf_counter() - started
    else:
        if num_nodes is None:
            simulation = Simulation(
                workload=workload.iter_requests(duration),
                policy=make_policy(policy_name),
                staleness_bound=staleness_bound,
                duration=duration,
                workload_name=workload.name,
            )
        else:
            simulation = ClusterSimulation(
                workload=workload.iter_requests(duration),
                policy=policy_name,
                num_nodes=num_nodes,
                staleness_bound=staleness_bound,
                replication=ReplicationConfig(factor=replication),
                duration=duration,
                workload_name=workload.name,
                seed=seed,
                tier=tier,
            )
        started = time.perf_counter()
        raw = simulation.run()
        elapsed = time.perf_counter() - started
        started = time.perf_counter()
        deque(workload.iter_requests(duration), maxlen=0)
        generation_seconds = time.perf_counter() - started
    result = raw.totals if num_nodes is not None else raw
    replayed = result.total_requests
    # Peak RSS is reported once per bench run, not per policy: ru_maxrss is a
    # process-wide monotone maximum, so a per-policy value would silently
    # include every earlier policy's footprint.
    row = {
        "policy": policy_name,
        "engine": engine,
        "workers": workers if num_nodes is not None else 1,
        "requests": replayed,
        **phase_timings(elapsed, generation_seconds, merge_seconds),
        "requests_per_sec": replayed / elapsed if elapsed > 0 else 0.0,
        "normalized_freshness_cost": result.normalized_freshness_cost,
        "normalized_staleness_cost": result.normalized_staleness_cost,
        "hit_ratio": result.hit_ratio,
    }
    if num_nodes is not None:
        row["num_nodes"] = num_nodes
        row["replication"] = replication
        row["load_imbalance"] = raw.load_imbalance
        if tier is not None:
            row["l1_capacity"] = tier.l1_capacity
            row["tier_mode"] = tier.mode
            row["l1_hits"] = raw.l1_hits
            row["l1_hit_share"] = raw.l1_hits / raw.totals.hits if raw.totals.hits else 0.0
            row["tier_cost"] = raw.tier_cost
    return row


def bench_wal(
    num_records: int = 200_000,
    num_keys: int = 1000,
    flush_every: int = 256,
) -> Dict[str, Any]:
    """Measure raw WAL append and replay throughput.

    Appends ``num_records`` synthetic write records (group-committed every
    ``flush_every``), then replays the log from disk, reporting records/sec
    for both directions plus the on-disk footprint.
    """
    with tempfile.TemporaryDirectory(prefix="repro-wal-bench-") as root:
        wal = WriteAheadLog(Path(root) / "wal.log", flush_every=flush_every)
        started = time.perf_counter()
        for index in range(num_records):
            wal.append(
                KIND_WRITE,
                {"key": f"key-{index % num_keys:06d}", "t": float(index), "vs": 128},
            )
        wal.flush()
        append_seconds = time.perf_counter() - started
        started = time.perf_counter()
        scan = WalScan()
        replayed = sum(1 for _ in wal.replay(scan=scan))
        replay_seconds = time.perf_counter() - started
        wal.close()
        return {
            "records": num_records,
            "flush_every": flush_every,
            "bytes_written": wal.stats.bytes_written,
            "flushes": wal.stats.flushes,
            "append_seconds": append_seconds,
            "append_per_sec": num_records / append_seconds if append_seconds > 0 else 0.0,
            "replayed": replayed,
            "replay_seconds": replay_seconds,
            "replay_per_sec": replayed / replay_seconds if replay_seconds > 0 else 0.0,
        }


def run_bench(
    policies: Sequence[str] = DEFAULT_BENCH_POLICIES,
    num_requests: int = 200_000,
    num_keys: int = 1000,
    staleness_bound: float = 1.0,
    seed: int = 0,
    output_dir: str | Path = ".",
    label: Optional[str] = None,
    num_nodes: Optional[int] = None,
    replication: int = 1,
    store: bool = False,
    tier: Optional[TierConfig] = None,
    engine: str = "scalar",
    workers: int = 1,
) -> Dict[str, Any]:
    """Benchmark the streaming pipeline under several policies.

    With ``num_nodes`` set, benchmarks the cluster replay path instead of the
    single-cache path; ``tier`` additionally benchmarks the tiered (L1/L2)
    read path.  ``engine="vector"`` benchmarks the columnar replay engine,
    optionally shard-parallel across ``workers`` processes for cluster
    benches.  With ``store`` set, a :func:`bench_wal` pass is added and
    recorded under the ``"store"`` key (WAL append + replay throughput).
    Writes a ``BENCH_<label>.json`` record into ``output_dir`` and returns
    its contents (including the output path under ``"path"``).
    """
    results = [
        bench_policy(
            policy,
            num_requests=num_requests,
            num_keys=num_keys,
            staleness_bound=staleness_bound,
            seed=seed,
            num_nodes=num_nodes,
            replication=replication,
            tier=tier,
            engine=engine,
            workers=workers,
        )
        for policy in policies
    ]
    record: Dict[str, Any] = {
        "kind": "repro-bench",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "num_requests": num_requests,
            "num_keys": num_keys,
            "staleness_bound": staleness_bound,
            "seed": seed,
            "policies": list(policies),
            "num_nodes": num_nodes,
            "replication": replication,
            "store": store,
            "tier": tier.as_dict() if tier is not None else None,
            "engine": engine,
            "workers": workers,
        },
        "peak_rss_kib": peak_rss_kib(),
        "results": results,
    }
    if store:
        record["store"] = bench_wal(num_records=num_requests, num_keys=num_keys)
    label = label or time.strftime("%Y%m%dT%H%M%S")
    path = Path(output_dir) / f"BENCH_{label}.json"
    with path.open("w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    record["path"] = str(path)
    return record
