"""Experiment orchestration: declarative grids, parallel execution, export.

This is the layer that regenerates the paper's figures and tables at scale.
An :class:`ExperimentSpec` declares the evaluation grid (policy x workload x
staleness bound x capacity x channel), :func:`run_experiment` fans its cells
out over a process pool with deterministic per-cell seeding, and the export
helpers persist the rows as JSON or CSV.  :func:`run_bench` measures the
streaming pipeline's raw replay throughput.

Typical usage::

    from repro.experiments import ExperimentSpec, run_experiment, write_results_csv

    spec = ExperimentSpec(
        name="figure5",
        policies=["ttl-expiry", "invalidate", "update", "adaptive"],
        workloads=["poisson"],
        staleness_bounds=[0.1, 1.0, 10.0],
        duration=50.0,
        base_seed=42,
    )
    rows = run_experiment(spec, processes=8)
    write_results_csv(rows, "figure5.csv")
"""

from repro.experiments.bench import (
    BENCH_ENGINES,
    DEFAULT_BENCH_POLICIES,
    bench_policy,
    run_bench,
)
from repro.experiments.export import write_results_csv, write_results_json
from repro.experiments.registry import (
    COST_PRESETS,
    POLICY_FACTORIES,
    WORKLOAD_FACTORIES,
    make_cost_model,
    make_policy,
    make_workload,
)
from repro.experiments.runner import run_cell, run_experiment
from repro.experiments.spec import (
    ChannelSpec,
    ExperimentSpec,
    RunCell,
    ScenarioSpec,
    WorkloadSpec,
    stable_cell_seed,
)

__all__ = [
    "COST_PRESETS",
    "ChannelSpec",
    "BENCH_ENGINES",
    "DEFAULT_BENCH_POLICIES",
    "ExperimentSpec",
    "POLICY_FACTORIES",
    "RunCell",
    "ScenarioSpec",
    "WORKLOAD_FACTORIES",
    "WorkloadSpec",
    "bench_policy",
    "make_cost_model",
    "make_policy",
    "make_workload",
    "run_bench",
    "run_cell",
    "run_experiment",
    "stable_cell_seed",
    "write_results_csv",
    "write_results_json",
]
