#!/usr/bin/env python3
"""Link checker for README.md, docs/, and the mkdocs nav.

Checks, with no dependencies beyond the standard library:

* every relative markdown link in README.md and docs/**/*.md points at a
  file that exists (anchors and external http(s)/mailto links are skipped),
* every ``*.md`` path mentioned in mkdocs.yml exists under docs/, and
* every markdown file under docs/ is reachable from the mkdocs nav.

Exit code 0 when everything resolves; 1 with a report otherwise.  Run
directly (CI does) or through the pytest wrapper in tests/test_docs.py.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"

#: Inline markdown links: [text](target).  Reference-style links are not
#: used in this repository.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files() -> list[Path]:
    return [ROOT / "README.md"] + sorted(DOCS.rglob("*.md"))


def check_markdown_links() -> list[str]:
    """Return one error string per broken relative link."""
    errors = []
    for path in _markdown_files():
        text = path.read_text()
        # Fenced code blocks frequently contain example paths that are not
        # links; the link regex only matches [..](..) syntax, which does not
        # appear in this repository's code fences, so no stripping is needed.
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
    return errors


def _nav_block(config: str) -> str:
    """Return only the ``nav:`` section of mkdocs.yml.

    Restricting the scan to the nav block keeps .md mentions elsewhere in
    the config (comments, plugin options) from masquerading as nav entries
    or being misreported as missing docs files.
    """
    lines = config.splitlines()
    block: list[str] = []
    in_nav = False
    for line in lines:
        if re.match(r"^nav:\s*$", line):
            in_nav = True
            continue
        if in_nav:
            if line.strip() and not line.startswith((" ", "\t")):
                break  # next top-level key
            block.append(line)
    return "\n".join(block)


def check_mkdocs_nav() -> list[str]:
    """Return errors for nav entries without files and files without nav."""
    errors = []
    config = (ROOT / "mkdocs.yml").read_text()
    nav = _nav_block(config)
    if not nav.strip():
        return ["mkdocs.yml: no nav section found"]
    nav_paths = set(re.findall(r"[\w][\w/.-]*\.md", nav))
    for nav_path in sorted(nav_paths):
        if not (DOCS / nav_path).exists():
            errors.append(f"mkdocs.yml: nav references missing file docs/{nav_path}")
    for path in DOCS.rglob("*.md"):
        relative = str(path.relative_to(DOCS))
        if relative not in nav_paths:
            errors.append(f"docs/{relative}: not referenced from the mkdocs.yml nav")
    return errors


def main() -> int:
    errors = check_markdown_links() + check_mkdocs_nav()
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)/nav entries", file=sys.stderr)
        return 1
    print(f"links OK across {len(_markdown_files())} markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
