#!/usr/bin/env python3
"""Compare fresh ``BENCH_*.json`` records against ``BENCH_BASELINE.json``.

Usage::

    python scripts/check_bench.py --baseline BENCH_BASELINE.json \
        BENCH_fresh.json [BENCH_fresh2.json ...] [--max-regression 0.25]
    python scripts/check_bench.py --baseline BENCH_BASELINE.json \
        BENCH_fresh.json --update   # rewrite the baseline from the records

Each bench row is keyed ``<mode>/<policy>`` where mode encodes the measured
pipeline: ``single`` / ``cluster<N>`` for the scalar engine, ``vector`` for
the single-cache columnar engine, and ``cluster<N>-vec`` /
``cluster<N>-par`` for the columnar fleet replay (in-process / shard-
parallel on workers).  Entries record the engine and worker count alongside
requests/sec; a fresh record claiming a baseline entry with a different
engine or worker count is refused (exit 2) rather than compared.  A fresh
row regresses when its requests/sec falls more than ``--max-regression``
(default 25%) below the baseline's expectation.

Because throughput is machine-dependent, the baseline stores a *calibration
score* — a fixed pure-Python workload timed on the machine that recorded the
baseline.  The checker re-times the same workload locally and scales the
baseline expectation by the ratio, so a slower CI runner is not reported as
a code regression.  Pass ``--no-calibration`` to compare raw numbers.

Exit status: 0 when every baseline entry was measured and is within bounds,
1 on regression or uncovered baseline entries (``--allow-partial`` downgrades
the latter to a note), 2 on malformed or config-mismatched inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

try:
    from repro.experiments.bench import BENCH_PHASES
except ImportError:  # bare checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.experiments.bench import BENCH_PHASES

BASELINE_KIND = "repro-bench-baseline"
BENCH_KIND = "repro-bench"


def calibrate(rounds: int = 3) -> float:
    """Time a fixed pure-Python workload; return its ops/sec score.

    The workload (integer arithmetic + dict churn + string formatting)
    resembles the replay loop's instruction mix closely enough to track how
    fast a machine runs the simulator, and is deterministic in its work.
    """
    ops = 200_000
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        table: Dict[str, int] = {}
        total = 0
        for index in range(ops):
            key = f"key-{index & 1023:06d}"
            total += table.get(key, 0) + (index * 31 & 255)
            table[key] = total & 0xFFFF
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return ops / best


#: Bench config keys that define the measured workload: throughput is only
#: comparable between runs that agree on these.
_WORKLOAD_CONFIG_KEYS = ("num_requests", "num_keys", "staleness_bound", "seed")


def record_mode(config: Dict[str, Any]) -> str:
    """Derive the entry-key mode from a bench record's config."""
    nodes = config.get("num_nodes")
    engine = config.get("engine", "scalar")
    workers = int(config.get("workers") or 1)
    if not nodes:
        return "single" if engine == "scalar" else "vector"
    base = f"cluster{nodes}"
    if engine == "scalar":
        return base
    return f"{base}-par" if workers > 1 else f"{base}-vec"


def bench_entries(record: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Flatten one ``repro-bench`` record into ``mode/policy -> entry``.

    Each entry carries ``requests_per_sec`` plus the ``engine`` and
    ``workers`` that produced it, so the gate can refuse a record that
    claims a baseline entry while measuring a different pipeline.
    """
    if record.get("kind") != BENCH_KIND:
        raise ValueError(f"not a repro-bench record (kind={record.get('kind')!r})")
    config = record.get("config", {})
    for row in record["results"]:
        # Phase timings share one schema (repro.experiments.bench.BENCH_PHASES)
        # with the bench writer; a record missing a phase, or carrying a
        # negative one, was produced by a different (or broken) pipeline and
        # is refused like any other malformed input.
        for phase in BENCH_PHASES:
            value = row.get(phase)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ValueError(
                    f"row {row.get('policy')!r} has no valid phase timing "
                    f"{phase!r} (got {value!r}); expected the "
                    f"{'/'.join(BENCH_PHASES)} schema"
                )
    mode = record_mode(config)
    engine = config.get("engine", "scalar")
    workers = int(config.get("workers") or 1)
    return {
        f"{mode}/{row['policy']}": {
            "requests_per_sec": float(row["requests_per_sec"]),
            "engine": engine,
            "workers": workers,
        }
        for row in record["results"]
    }


def entry_rps(entry: Any) -> float:
    """Requests/sec of a baseline or fresh entry (floats are legacy form)."""
    if isinstance(entry, dict):
        return float(entry["requests_per_sec"])
    return float(entry)


def workload_config(record: Dict[str, Any]) -> Dict[str, Any]:
    """The comparability-defining subset of a bench record's config."""
    config = record.get("config", {})
    return {key: config.get(key) for key in _WORKLOAD_CONFIG_KEYS}


def load_json(path: Path) -> Dict[str, Any]:
    with path.open() as handle:
        return json.load(handle)


def collect_fresh(
    paths: List[Path],
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Any]]:
    """Flatten fresh records into entries plus their shared workload config.

    Raises:
        ValueError: If the fresh records disagree with each other on the
            workload configuration, or two records carry the same
            ``mode/policy`` entry (silently keeping one would make the gate
            depend on argument order).
    """
    entries: Dict[str, Dict[str, Any]] = {}
    config: Dict[str, Any] = {}
    for path in paths:
        record = load_json(path)
        record_entries = bench_entries(record)
        duplicated = sorted(set(record_entries) & set(entries))
        if duplicated:
            raise ValueError(
                f"{path} repeats entries already provided by an earlier "
                f"record ({', '.join(duplicated)}); pass each mode's record "
                "exactly once"
            )
        entries.update(record_entries)
        record_config = workload_config(record)
        if config and record_config != config:
            raise ValueError(
                f"{path} was benched with {record_config}, but an earlier "
                f"record used {config}; mixed-config records are not comparable"
            )
        config = record_config
    return entries, config


def compare(
    baseline: Dict[str, Any],
    fresh: Dict[str, Dict[str, Any]],
    max_regression: float,
    scale: float,
) -> Tuple[List[str], List[str], List[str], List[str]]:
    """Return (report lines, regressions, unmeasured entries, mismatches).

    A *mismatch* is a fresh row whose engine or worker count disagrees with
    the baseline entry of the same key — a config error, not a regression.
    """
    lines: List[str] = []
    regressions: List[str] = []
    mismatches: List[str] = []
    base_entries = baseline.get("entries", {})
    unmeasured = sorted(set(base_entries) - set(fresh))
    for key, fresh_entry in sorted(fresh.items()):
        base_entry = base_entries.get(key)
        fresh_rps = entry_rps(fresh_entry)
        if base_entry is None:
            lines.append(f"  {key:>24}: {fresh_rps:>12,.0f} req/s (no baseline entry)")
            continue
        if isinstance(base_entry, dict):
            for field in ("engine", "workers"):
                expected_field = base_entry.get(field)
                measured_field = fresh_entry.get(field)
                if expected_field is not None and measured_field != expected_field:
                    mismatches.append(
                        f"{key}: baseline records {field}={expected_field!r} "
                        f"but the fresh record measured {measured_field!r}"
                    )
        expected = entry_rps(base_entry) * scale
        floor = expected * (1.0 - max_regression)
        ratio = fresh_rps / expected if expected > 0 else float("inf")
        verdict = "ok" if fresh_rps >= floor else "REGRESSION"
        lines.append(
            f"  {key:>24}: {fresh_rps:>12,.0f} req/s vs expected "
            f"{expected:>12,.0f} ({ratio:.2f}x) {verdict}"
        )
        if fresh_rps < floor:
            regressions.append(key)
    return lines, regressions, unmeasured, mismatches


def update_baseline(
    path: Path,
    fresh: Dict[str, Dict[str, Any]],
    config: Dict[str, Any],
    max_regression: float,
    previous: Dict[str, Any],
) -> None:
    """Rewrite the baseline from fresh entries (keeps the pre-PR reference)."""
    record = {
        "kind": BASELINE_KIND,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "max_regression": max_regression,
        "calibration_ops_per_sec": calibrate(),
        "config": config,
        "entries": fresh,
    }
    if "pre_pr" in previous:
        record["pre_pr"] = previous["pre_pr"]
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"updated {path} ({len(fresh)} entries)")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="+", type=Path,
                        help="fresh BENCH_*.json record(s) to check")
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_BASELINE.json"))
    parser.add_argument("--max-regression", type=float, default=None,
                        help="allowed fractional slowdown (default: the "
                             "baseline's own bound, else 0.25)")
    parser.add_argument("--no-calibration", action="store_true",
                        help="compare raw req/s without machine-speed scaling")
    parser.add_argument("--allow-partial", action="store_true",
                        help="do not fail when some baseline entries have no "
                             "matching fresh row")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the fresh records")
    args = parser.parse_args(argv)

    try:
        fresh, fresh_config = collect_fresh(args.fresh)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error reading fresh records: {exc}", file=sys.stderr)
        return 2
    if not fresh:
        print("error: no bench rows found in the fresh records", file=sys.stderr)
        return 2

    baseline: Dict[str, Any] = {}
    if args.baseline.exists():
        try:
            baseline = load_json(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error reading baseline: {exc}", file=sys.stderr)
            return 2
        if baseline.get("kind") != BASELINE_KIND:
            print(f"error: {args.baseline} is not a {BASELINE_KIND} record",
                  file=sys.stderr)
            return 2
    elif not args.update:
        print(f"error: baseline {args.baseline} not found (run with --update "
              "to create it)", file=sys.stderr)
        return 2

    max_regression = args.max_regression
    if max_regression is None:
        max_regression = float(baseline.get("max_regression", 0.25))

    if args.update:
        update_baseline(args.baseline, fresh, fresh_config, max_regression, baseline)
        return 0

    baseline_config = baseline.get("config")
    if baseline_config is not None:
        base_workload = {
            key: baseline_config.get(key) for key in _WORKLOAD_CONFIG_KEYS
        }
        if base_workload != fresh_config:
            # Throughput at a different workload size is a different metric:
            # refuse rather than apply the threshold to mismatched runs.
            print(
                "error: fresh records were benched with "
                f"{fresh_config}, but the baseline records {base_workload}; "
                "re-run the bench with the baseline's configuration (or "
                "--update the baseline)",
                file=sys.stderr,
            )
            return 2

    scale = 1.0
    if not args.no_calibration:
        base_cal = baseline.get("calibration_ops_per_sec")
        if base_cal:
            local_cal = calibrate()
            scale = local_cal / float(base_cal)
            print(
                f"calibration: local {local_cal:,.0f} ops/s vs baseline "
                f"{float(base_cal):,.0f} ops/s -> scaling expectations by {scale:.2f}x"
            )

    lines, regressions, unmeasured, mismatches = compare(
        baseline, fresh, max_regression, scale
    )
    print(f"bench check vs {args.baseline} (max regression {max_regression:.0%}):")
    for line in lines:
        print(line)
    if mismatches:
        for mismatch in mismatches:
            print(f"error: {mismatch}", file=sys.stderr)
        print(
            "error: engine/worker mismatch is a bench-invocation error, not a "
            "regression; re-run the bench with the baseline's pipeline flags",
            file=sys.stderr,
        )
        return 2
    matched = [line for line in lines if "no baseline entry" not in line]
    if not matched:
        print("error: no fresh row matched a baseline entry", file=sys.stderr)
        return 1
    if regressions:
        print(f"FAILED: {len(regressions)} regression(s): {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    if unmeasured and not args.allow_partial:
        # A baseline entry nobody measured is an ungated path, not a pass.
        print(
            f"FAILED: {len(unmeasured)} baseline entr{'y' if len(unmeasured) == 1 else 'ies'} "
            f"not covered by the fresh records: {', '.join(unmeasured)} "
            "(pass --allow-partial for a deliberate partial check)",
            file=sys.stderr,
        )
        return 1
    if unmeasured:
        print(f"note: {len(unmeasured)} baseline entries unmeasured (--allow-partial)")
    print("all measured benches within bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
