#!/usr/bin/env python3
"""Regenerate the canonical obs run and gate it against ``OBS_BASELINE.json``.

Usage::

    python scripts/check_obs.py --baseline OBS_BASELINE.json
    python scripts/check_obs.py --baseline OBS_BASELINE.json --update

The canonical run is a fixed single-cache cell (poisson / invalidate /
bound 1.0 / duration 20 / obs window 2.0) replayed with telemetry on.
Unlike the throughput gate in ``check_bench.py``, nothing here is
machine-dependent: the recorder samples *simulated* time only, so the
payload is bit-for-bit reproducible on any machine and the gate is exact
JSON equality.  On drift, the window-aligned regression report from
``repro.obs.analyze.diff_payloads`` is printed to show *where* the
telemetry moved (which windows, which fields, which direction) before the
raw mismatch fails the check.

``--update`` rewrites the baseline from a fresh run — do this deliberately
when a PR intentionally changes replay behaviour or the payload schema, and
commit the result like ``BENCH_BASELINE.json``.

Exit status: 0 when the fresh payload matches the baseline exactly, 1 on
drift, 2 on a malformed or missing baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict

try:
    from repro.experiments.spec import RunCell, stable_cell_seed
except ImportError:  # bare checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.experiments.spec import RunCell, stable_cell_seed

from repro.experiments.runner import run_cell
from repro.obs.analyze import diff_payloads

BASELINE_KIND = "repro-obs-baseline"

#: The canonical cell.  Changing any coordinate is a baseline schema change:
#: bump it together with an ``--update``.
CANONICAL = dict(
    policy="invalidate",
    workload="poisson",
    staleness_bound=1.0,
    duration=20.0,
    obs_window=2.0,
    base_seed=0,
)


def canonical_payload() -> Dict[str, Any]:
    """Replay the canonical cell and return its obs payload."""
    cell = RunCell(
        experiment="obs-baseline",
        cell_id=0,
        policy=CANONICAL["policy"],
        workload=CANONICAL["workload"],
        workload_params=(),
        staleness_bound=CANONICAL["staleness_bound"],
        cache_capacity=None,
        channel=None,
        duration=CANONICAL["duration"],
        seed=stable_cell_seed(
            CANONICAL["base_seed"], CANONICAL["workload"], {}, CANONICAL["duration"]
        ),
        obs_window=CANONICAL["obs_window"],
    )
    return run_cell(cell)["obs"]


def canonical_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=Path("OBS_BASELINE.json"))
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from a fresh canonical run")
    args = parser.parse_args(argv)

    fresh = canonical_payload()

    if args.update:
        record = {
            "kind": BASELINE_KIND,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "config": CANONICAL,
            "payload": fresh,
        }
        args.baseline.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"updated {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found (run with --update "
              "to create it)", file=sys.stderr)
        return 2
    try:
        record = json.loads(args.baseline.read_text())
    except (OSError, ValueError) as exc:
        print(f"error reading baseline: {exc}", file=sys.stderr)
        return 2
    if record.get("kind") != BASELINE_KIND:
        print(f"error: {args.baseline} is not a {BASELINE_KIND} record",
              file=sys.stderr)
        return 2
    if record.get("config") != CANONICAL:
        print(
            f"error: {args.baseline} records the canonical cell as "
            f"{record.get('config')}, but this checker runs {CANONICAL}; "
            "refresh the baseline with --update",
            file=sys.stderr,
        )
        return 2

    baseline_payload = record.get("payload", {})
    if canonical_json(baseline_payload) == canonical_json(fresh):
        totals = fresh.get("meta", {}).get("totals", {})
        print(
            f"obs baseline check: payload identical "
            f"({len(fresh.get('windows', {}).get('rows', []))} windows, "
            f"reads={totals.get('reads', 0)})"
        )
        return 0

    print(f"FAILED: canonical obs payload drifted from {args.baseline}",
          file=sys.stderr)
    try:
        report = diff_payloads(baseline_payload, fresh)
    except ValueError as exc:
        print(f"  (window series not alignable: {exc})", file=sys.stderr)
        return 1
    print(
        f"  {report['regression_count']} regressions, "
        f"{report['improvement_count']} improvements across "
        f"{report['windows_compared']} windows",
        file=sys.stderr,
    )
    for entry in report["regressions"][:10]:
        print(
            f"  {entry['field']} worsened by {entry['severity']:g} in "
            f"t=[{entry['start']:g}, {entry['end']:g})",
            file=sys.stderr,
        )
    for field, delta in sorted(report["totals"].items()):
        print(
            f"  totals[{field}]: {delta['base']:g} -> {delta['other']:g}",
            file=sys.stderr,
        )
    print(
        "  if the change is intentional, refresh with: "
        "python scripts/check_obs.py --update",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
